// First-order formulas over the real field and a relational schema.
//
// This is the syntax of the paper's languages: FO+LIN and FO+POLY are both
// first-order logic whose atoms are polynomial (in)equalities p(x) op 0,
// plus schema predicates S(t1..tk). Formulas are immutable shared trees.

#ifndef CQA_LOGIC_FORMULA_H_
#define CQA_LOGIC_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cqa/poly/polynomial.h"
#include "cqa/util/status.h"

namespace cqa {

/// Comparison operator of an atomic constraint `poly op 0`.
enum class RelOp { kLt, kLe, kEq, kNe, kGt, kGe };

/// Negation of an operator (e.g. !(p < 0) == p >= 0).
RelOp negate_op(RelOp op);
/// Rendering: "<", "<=", "=", "!=", ">", ">=".
const char* op_symbol(RelOp op);
/// Applies the operator to an exact sign (-1, 0, +1).
bool op_holds(RelOp op, int sign);

class Formula;
/// Shared immutable formula handle.
using FormulaPtr = std::shared_ptr<const Formula>;

/// A first-order formula node.
///
/// Construct via the factory functions below (f_atom, f_and, ...), never
/// directly; the factories normalize trivial cases.
class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,       // poly op 0
    kPredicate,  // S(t1, ..., tk), ti polynomials
    kNot,
    kAnd,
    kOr,
    kExists,
    kForall,
  };

  Kind kind() const { return kind_; }

  /// Atom payload (kind() == kAtom).
  const Polynomial& poly() const { return poly_; }
  RelOp op() const { return op_; }

  /// Predicate payload (kind() == kPredicate).
  const std::string& pred_name() const { return pred_name_; }
  const std::vector<Polynomial>& args() const { return args_; }

  /// Children (kNot: 1; kAnd/kOr: >= 2; quantifiers: 1).
  const std::vector<FormulaPtr>& children() const { return children_; }

  /// Quantified variable (kExists/kForall).
  std::size_t var() const { return var_; }
  /// True for active-domain quantifiers (range over adom(D), not R).
  bool active_domain() const { return active_domain_; }

  // --- Factories ------------------------------------------------------

  static FormulaPtr make_true();
  static FormulaPtr make_false();
  /// poly op 0. Constant polynomials fold to true/false.
  static FormulaPtr atom(Polynomial poly, RelOp op);
  static FormulaPtr predicate(std::string name, std::vector<Polynomial> args);
  static FormulaPtr f_not(FormulaPtr f);
  /// Conjunction; flattens nested ands, folds constants, returns true for {}.
  static FormulaPtr f_and(std::vector<FormulaPtr> fs);
  static FormulaPtr f_and(FormulaPtr a, FormulaPtr b);
  /// Disjunction; flattens nested ors, folds constants, returns false for {}.
  static FormulaPtr f_or(std::vector<FormulaPtr> fs);
  static FormulaPtr f_or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr exists(std::size_t var, FormulaPtr body,
                           bool active_domain = false);
  static FormulaPtr forall(std::size_t var, FormulaPtr body,
                           bool active_domain = false);

  // --- Convenience atom builders (lhs op rhs) --------------------------

  static FormulaPtr lt(const Polynomial& a, const Polynomial& b) {
    return atom(a - b, RelOp::kLt);
  }
  static FormulaPtr le(const Polynomial& a, const Polynomial& b) {
    return atom(a - b, RelOp::kLe);
  }
  static FormulaPtr eq(const Polynomial& a, const Polynomial& b) {
    return atom(a - b, RelOp::kEq);
  }
  static FormulaPtr ne(const Polynomial& a, const Polynomial& b) {
    return atom(a - b, RelOp::kNe);
  }
  static FormulaPtr gt(const Polynomial& a, const Polynomial& b) {
    return atom(a - b, RelOp::kGt);
  }
  static FormulaPtr ge(const Polynomial& a, const Polynomial& b) {
    return atom(a - b, RelOp::kGe);
  }
  /// a <= x && x <= b.
  static FormulaPtr between(const Polynomial& lo, const Polynomial& x,
                            const Polynomial& hi) {
    return f_and(le(lo, x), le(x, hi));
  }

  // --- Structural queries ----------------------------------------------

  /// Free variables, added to *out.
  void free_vars(std::set<std::size_t>* out) const;
  std::set<std::size_t> free_vars() const;
  /// Largest variable index appearing anywhere (bound or free); -1 if none.
  int max_var() const;
  /// No quantifiers anywhere.
  bool is_quantifier_free() const;
  /// All atom polynomials affine, i.e. an FO+LIN formula.
  bool is_linear() const;
  /// Contains a schema predicate.
  bool has_predicates() const;
  /// Number of atomic subformulas (atoms + predicates).
  std::size_t count_atoms() const;
  /// Number of quantifiers.
  std::size_t count_quantifiers() const;

 private:
  Formula() = default;

  Kind kind_ = Kind::kTrue;
  Polynomial poly_;
  RelOp op_ = RelOp::kEq;
  std::string pred_name_;
  std::vector<Polynomial> args_;
  std::vector<FormulaPtr> children_;
  std::size_t var_ = 0;
  bool active_domain_ = false;
};

}  // namespace cqa

#endif  // CQA_LOGIC_FORMULA_H_
