#include "cqa/logic/parser.h"

#include <cctype>

namespace cqa {

std::size_t VarTable::index_of(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);  // re-check: another interner may have won
  if (it != index_.end()) return it->second;
  std::size_t idx = names_.size();
  index_.emplace(name, idx);
  names_.push_back(name);
  return idx;
}

int VarTable::find(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

std::string VarTable::name_of(std::size_t i) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (i < names_.size()) return names_[i];
  return "x" + std::to_string(i);
}

namespace {

// Caps found by fuzzing the parser: unbounded exponents overflow
// std::stoul (and blow up Polynomial::pow), and unbounded grammar
// recursion overflows the stack on pathological nesting. Both must
// surface as Status::invalid, never as a crash.
constexpr unsigned kMaxExponent = 1000;
constexpr int kMaxParseDepth = 200;

class Parser {
 public:
  Parser(const std::string& text, VarTable* vars)
      : text_(text), vars_(vars) {}

  Result<FormulaPtr> parse() {
    auto f = formula();
    if (!f.is_ok()) return f;
    skip_ws();
    if (pos_ != text_.size()) {
      return Status::invalid("trailing input at offset " +
                             std::to_string(pos_) + ": " + text_.substr(pos_));
    }
    return f;
  }

  Result<Polynomial> parse_poly() {
    auto p = expr();
    if (!p.is_ok()) return p;
    skip_ws();
    if (pos_ != text_.size()) {
      return Status::invalid("trailing input in polynomial: " +
                             text_.substr(pos_));
    }
    return p;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_str(const char* s) {
    skip_ws();
    std::size_t len = std::string(s).size();
    if (text_.compare(pos_, len, s) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status err(const std::string& msg) {
    return Status::invalid(msg + " at offset " + std::to_string(pos_));
  }

  bool at_ident() {
    char c = peek();
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }

  std::string ident() {
    skip_ws();
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      out.push_back(text_[pos_++]);
    }
    return out;
  }

  Result<Rational> number() {
    skip_ws();
    std::string tok;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      tok.push_back(text_[pos_++]);
    }
    if (tok.empty()) return err("expected number");
    auto r = Rational::from_string(tok);
    if (!r.is_ok()) return r.status();
    Rational val = r.value();
    // Optional '/denominator' for rational literals.
    std::size_t save = pos_;
    if (eat('/')) {
      skip_ws();
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        std::string den;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          den.push_back(text_[pos_++]);
        }
        auto d = Rational::from_string(den);
        if (!d.is_ok()) return d.status();
        if (d.value().is_zero()) return err("division by zero literal");
        return val / d.value();
      }
      pos_ = save;
    }
    return val;
  }

  // ---- formulas -------------------------------------------------------

  Result<FormulaPtr> formula() { return or_level(); }

  Result<FormulaPtr> quant() {
    // Caller verified the lookahead. 'E'/'A' then identifier then '.'.
    skip_ws();
    char q = text_[pos_++];
    skip_ws();
    if (!at_ident()) return err("expected variable after quantifier");
    std::string name = ident();
    if (!eat('.')) return err("expected '.' after quantified variable");
    auto body = unary_or_quant_scope();
    if (!body.is_ok()) return body;
    std::size_t v = vars_->index_of(name);
    return q == 'E' ? Formula::exists(v, body.value())
                    : Formula::forall(v, body.value());
  }

  // The body of a quantifier extends as far right as possible.
  Result<FormulaPtr> unary_or_quant_scope() { return or_level(); }

  Result<FormulaPtr> or_level() {
    auto lhs = and_level();
    if (!lhs.is_ok()) return lhs;
    std::vector<FormulaPtr> parts{lhs.value()};
    while (eat('|')) {
      auto rhs = and_level();
      if (!rhs.is_ok()) return rhs;
      parts.push_back(rhs.value());
    }
    return Formula::f_or(std::move(parts));
  }

  Result<FormulaPtr> and_level() {
    auto lhs = unary();
    if (!lhs.is_ok()) return lhs;
    std::vector<FormulaPtr> parts{lhs.value()};
    while (eat('&')) {
      auto rhs = unary();
      if (!rhs.is_ok()) return rhs;
      parts.push_back(rhs.value());
    }
    return Formula::f_and(std::move(parts));
  }

  bool at_quantifier() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c != 'E' && c != 'A') return false;
    // Must be a bare 'E'/'A' token followed by an identifier.
    std::size_t next = pos_ + 1;
    if (next < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[next])) ||
         text_[next] == '_')) {
      return false;  // it's an identifier like "Edge"
    }
    // Disambiguate predicates named "E"/"A": a quantifier is followed by
    // a bound-variable identifier, a predicate by '('.
    while (next < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[next]))) {
      ++next;
    }
    if (next < text_.size() && text_[next] == '(') return false;
    return true;
  }

  // Depth guard wrapping both recursion-carrying productions (every
  // nesting construct passes through unary() or factor()).
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };

  Result<FormulaPtr> unary() {
    DepthGuard guard(&depth_);
    if (depth_ > kMaxParseDepth) return err("formula nesting too deep");
    skip_ws();
    if (eat('!')) {
      auto sub = unary();
      if (!sub.is_ok()) return sub;
      return Formula::f_not(sub.value());
    }
    if (at_quantifier()) return quant();
    if (eat_str("true")) return Formula::make_true();
    if (eat_str("false")) return Formula::make_false();

    // '(' could open a parenthesized formula or a parenthesized expr that
    // begins an atom. Try formula first, backtracking on failure.
    if (peek() == '(') {
      std::size_t save = pos_;
      ++pos_;  // consume '('
      auto inner = formula();
      if (inner.is_ok() && eat(')')) {
        // If a relational operator follows, this was actually an expression
        // in parentheses (e.g. "(x + 1) < y"): backtrack to atom parsing.
        char c = peek();
        if (c != '<' && c != '>' && c != '=' && c != '!') {
          return inner;
        }
      }
      pos_ = save;
      return atom();
    }

    // Predicate: Uppercase identifier followed by '('.
    if (at_ident()) {
      std::size_t save = pos_;
      std::string name = ident();
      if (!name.empty() && std::isupper(static_cast<unsigned char>(name[0])) &&
          peek() == '(') {
        ++pos_;  // consume '('
        std::vector<Polynomial> args;
        if (!eat(')')) {
          for (;;) {
            auto a = expr();
            if (!a.is_ok()) return a.status();
            args.push_back(a.value());
            if (eat(')')) break;
            if (!eat(',')) return err("expected ',' or ')' in predicate args");
          }
        }
        return Formula::predicate(name, std::move(args));
      }
      pos_ = save;
    }
    return atom();
  }

  Result<FormulaPtr> atom() {
    auto lhs = expr();
    if (!lhs.is_ok()) return lhs.status();
    skip_ws();
    RelOp op;
    if (eat_str("<=")) {
      op = RelOp::kLe;
    } else if (eat_str(">=")) {
      op = RelOp::kGe;
    } else if (eat_str("!=")) {
      op = RelOp::kNe;
    } else if (eat('<')) {
      op = RelOp::kLt;
    } else if (eat('>')) {
      op = RelOp::kGt;
    } else if (eat('=')) {
      op = RelOp::kEq;
    } else {
      return err("expected relational operator");
    }
    auto rhs = expr();
    if (!rhs.is_ok()) return rhs.status();
    return Formula::atom(lhs.value() - rhs.value(), op);
  }

  // ---- polynomial expressions ----------------------------------------

  Result<Polynomial> expr() {
    auto lhs = term();
    if (!lhs.is_ok()) return lhs;
    Polynomial out = lhs.value();
    for (;;) {
      if (eat('+')) {
        auto rhs = term();
        if (!rhs.is_ok()) return rhs;
        out += rhs.value();
      } else if (eat('-')) {
        auto rhs = term();
        if (!rhs.is_ok()) return rhs;
        out -= rhs.value();
      } else {
        return out;
      }
    }
  }

  Result<Polynomial> term() {
    auto lhs = factor();
    if (!lhs.is_ok()) return lhs;
    Polynomial out = lhs.value();
    while (eat('*')) {
      auto rhs = factor();
      if (!rhs.is_ok()) return rhs;
      out *= rhs.value();
    }
    return out;
  }

  Result<Polynomial> factor() {
    DepthGuard guard(&depth_);
    if (depth_ > kMaxParseDepth) return err("expression nesting too deep");
    skip_ws();
    if (eat('-')) {
      auto f = factor();
      if (!f.is_ok()) return f;
      return -f.value();
    }
    auto p = primary();
    if (!p.is_ok()) return p;
    Polynomial out = p.value();
    if (eat('^')) {
      skip_ws();
      std::string digits;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        digits.push_back(text_[pos_++]);
      }
      if (digits.empty()) return err("expected exponent");
      // Parse by hand: std::stoul throws on overflow, and exponents
      // beyond kMaxExponent are rejected before Polynomial::pow can
      // blow up time or memory.
      unsigned long e = 0;
      for (char d : digits) {
        e = e * 10 + static_cast<unsigned long>(d - '0');
        if (e > kMaxExponent) {
          return err("exponent exceeds " + std::to_string(kMaxExponent));
        }
      }
      out = out.pow(static_cast<unsigned>(e));
    }
    return out;
  }

  Result<Polynomial> primary() {
    skip_ws();
    if (pos_ >= text_.size()) return err("unexpected end of input");
    char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      auto n = number();
      if (!n.is_ok()) return n.status();
      return Polynomial::constant(n.value());
    }
    if (c == '(') {
      ++pos_;
      auto e = expr();
      if (!e.is_ok()) return e;
      if (!eat(')')) return err("expected ')'");
      return e;
    }
    if (at_ident()) {
      std::string name = ident();
      return Polynomial::variable(vars_->index_of(name));
    }
    return err(std::string("unexpected character '") + c + "'");
  }

  const std::string& text_;
  VarTable* vars_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<FormulaPtr> parse_formula(const std::string& text, VarTable* vars) {
  return Parser(text, vars).parse();
}

Result<FormulaPtr> parse_formula(const std::string& text) {
  VarTable vars;
  return parse_formula(text, &vars);
}

Result<Polynomial> parse_polynomial(const std::string& text, VarTable* vars) {
  return Parser(text, vars).parse_poly();
}

}  // namespace cqa
