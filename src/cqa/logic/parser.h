// Text syntax for FO+LIN / FO+POLY formulas.
//
// Grammar (precedence from loosest to tightest):
//
//   formula  := quant | or
//   quant    := ('E' | 'A') ident '.' formula        (exists / forall)
//   or       := and ('|' and)*
//   and      := unary ('&' unary)*
//   unary    := '!' unary | quant | '(' formula ')' | 'true' | 'false'
//             | Pred '(' expr (',' expr)* ')' | expr relop expr
//   relop    := '<' | '<=' | '=' | '!=' | '>' | '>='
//   expr     := term (('+' | '-') term)*
//   term     := factor ('*' factor)*
//   factor   := '-' factor | primary ('^' nat)?
//   primary  := number ('/' number)? | ident | '(' expr ')'
//
// Identifiers starting with an uppercase letter and followed by '(' are
// schema predicates; every other identifier is a real variable. Variables
// get indices in order of first appearance (or from a caller-provided
// table, so several formulas can share a variable space).

#ifndef CQA_LOGIC_PARSER_H_
#define CQA_LOGIC_PARSER_H_

#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cqa/logic/formula.h"

namespace cqa {

/// Maps variable names to indices (and back) across parses.
///
/// Internally synchronized: a ConstraintDatabase's table is shared by
/// every parse, and the serving layer runs parses on concurrent
/// executor threads. Interning takes the lock exclusively; lookups take
/// it shared. names() returns a snapshot for the same reason.
class VarTable {
 public:
  VarTable() = default;
  VarTable(const VarTable& other) : VarTable(other, ReadLocked(other)) {}
  VarTable& operator=(const VarTable& other) {
    if (this != &other) {
      VarTable copy(other);
      std::unique_lock<std::shared_mutex> lock(mu_);
      index_ = std::move(copy.index_);
      names_ = std::move(copy.names_);
    }
    return *this;
  }

  /// Index of `name`, allocating the next free index if new.
  std::size_t index_of(const std::string& name);
  /// Index if present, -1 otherwise.
  int find(const std::string& name) const;
  /// Name of index i ("x<i>" if the index was never named).
  std::string name_of(std::size_t i) const;
  std::size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return names_.size();
  }
  std::vector<std::string> names() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return names_;
  }

 private:
  // Copy-under-lock helper: holds other's lock while members copy.
  struct ReadLocked {
    explicit ReadLocked(const VarTable& t) : lock(t.mu_) {}
    std::shared_lock<std::shared_mutex> lock;
  };
  VarTable(const VarTable& other, const ReadLocked&)
      : index_(other.index_), names_(other.names_) {}

  mutable std::shared_mutex mu_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::string> names_;
};

/// Parses a formula; variable names resolve through *vars (shared and
/// extended across calls).
Result<FormulaPtr> parse_formula(const std::string& text, VarTable* vars);

/// Parses with a throwaway table; for tests and examples.
Result<FormulaPtr> parse_formula(const std::string& text);

/// Parses a bare polynomial expression.
Result<Polynomial> parse_polynomial(const std::string& text, VarTable* vars);

}  // namespace cqa

#endif  // CQA_LOGIC_PARSER_H_
