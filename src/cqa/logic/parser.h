// Text syntax for FO+LIN / FO+POLY formulas.
//
// Grammar (precedence from loosest to tightest):
//
//   formula  := quant | or
//   quant    := ('E' | 'A') ident '.' formula        (exists / forall)
//   or       := and ('|' and)*
//   and      := unary ('&' unary)*
//   unary    := '!' unary | quant | '(' formula ')' | 'true' | 'false'
//             | Pred '(' expr (',' expr)* ')' | expr relop expr
//   relop    := '<' | '<=' | '=' | '!=' | '>' | '>='
//   expr     := term (('+' | '-') term)*
//   term     := factor ('*' factor)*
//   factor   := '-' factor | primary ('^' nat)?
//   primary  := number ('/' number)? | ident | '(' expr ')'
//
// Identifiers starting with an uppercase letter and followed by '(' are
// schema predicates; every other identifier is a real variable. Variables
// get indices in order of first appearance (or from a caller-provided
// table, so several formulas can share a variable space).

#ifndef CQA_LOGIC_PARSER_H_
#define CQA_LOGIC_PARSER_H_

#include <map>
#include <string>
#include <vector>

#include "cqa/logic/formula.h"

namespace cqa {

/// Maps variable names to indices (and back) across parses.
class VarTable {
 public:
  /// Index of `name`, allocating the next free index if new.
  std::size_t index_of(const std::string& name);
  /// Index if present, -1 otherwise.
  int find(const std::string& name) const;
  /// Name of index i ("x<i>" if the index was never named).
  std::string name_of(std::size_t i) const;
  std::size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::map<std::string, std::size_t> index_;
  std::vector<std::string> names_;
};

/// Parses a formula; variable names resolve through *vars (shared and
/// extended across calls).
Result<FormulaPtr> parse_formula(const std::string& text, VarTable* vars);

/// Parses with a throwaway table; for tests and examples.
Result<FormulaPtr> parse_formula(const std::string& text);

/// Parses a bare polynomial expression.
Result<Polynomial> parse_polynomial(const std::string& text, VarTable* vars);

}  // namespace cqa

#endif  // CQA_LOGIC_PARSER_H_
