// Evaluation of quantifier-free formulas at points.

#ifndef CQA_LOGIC_EVAL_H_
#define CQA_LOGIC_EVAL_H_

#include <string>
#include <vector>

#include "cqa/linalg/matrix.h"
#include "cqa/logic/formula.h"

namespace cqa {

/// Resolves schema-predicate membership during evaluation.
class PredicateOracle {
 public:
  virtual ~PredicateOracle() = default;
  /// True iff the named relation contains the exact rational tuple.
  virtual bool contains(const std::string& name, const RVec& tuple) const = 0;
};

/// Evaluates a quantifier-free formula at an exact rational point.
/// `point[i]` interprets variable i; the point must cover every variable.
/// Predicates require an oracle (error otherwise).
Result<bool> eval_qf(const FormulaPtr& f, const RVec& point,
                     const PredicateOracle* oracle = nullptr);

/// Double-precision membership oracle (for Monte-Carlo sampling paths).
class DoubleOracle {
 public:
  virtual ~DoubleOracle() = default;
  virtual bool contains(const std::string& name,
                        const std::vector<double>& tuple) const = 0;
};

/// Evaluates a quantifier-free formula at a double point. Inexact near
/// atom boundaries -- boundary sets have measure zero, which is all the
/// Monte-Carlo estimators need. Predicates require an oracle.
Result<bool> eval_qf_double(const FormulaPtr& f,
                            const std::vector<double>& point,
                            const DoubleOracle* oracle = nullptr);

}  // namespace cqa

#endif  // CQA_LOGIC_EVAL_H_
