// Structural transformations of formulas: NNF, substitution, DNF.

#ifndef CQA_LOGIC_TRANSFORM_H_
#define CQA_LOGIC_TRANSFORM_H_

#include <map>
#include <vector>

#include "cqa/logic/formula.h"

namespace cqa {

/// Negation normal form: negations pushed to the leaves. For predicate-free
/// formulas the result has no kNot nodes at all (atom negation folds into
/// the operator); predicates may keep a single kNot above them.
FormulaPtr to_nnf(const FormulaPtr& f);

/// Substitutes a rational constant for a free variable (capture-free since
/// the replacement has no variables).
FormulaPtr substitute_var(const FormulaPtr& f, std::size_t var,
                          const Rational& value);

/// Simultaneous substitution of polynomials for free variables, with
/// capture-avoiding renaming of bound variables (fresh indices above every
/// index used by the formula or the replacement terms).
FormulaPtr substitute_vars(const FormulaPtr& f,
                           const std::map<std::size_t, Polynomial>& sub);

/// Replaces every occurrence of predicate `name` (of the given arity) by
/// the defining formula `def`, whose free variables 0..arity-1 stand for
/// the argument slots. This is the paper's Lemma 1 move: plugging a
/// finitely-representable database into a query.
FormulaPtr substitute_predicate(const FormulaPtr& f, const std::string& name,
                                std::size_t arity, const FormulaPtr& def);

/// One literal of a DNF cell: poly op 0 (negations already folded).
struct Literal {
  Polynomial poly;
  RelOp op;
};

/// Disjunctive normal form of a quantifier-free, predicate-free formula:
/// a list of conjunctive cells, each a list of literals. Empty list means
/// `false`; a cell with no literals means `true`.
/// Fails (kUnsupported) if the formula has quantifiers or predicates, or
/// if the DNF would exceed `max_cells`.
Result<std::vector<std::vector<Literal>>> to_dnf(
    const FormulaPtr& f, std::size_t max_cells = 1u << 20);

/// Rebuilds a formula from DNF cells.
FormulaPtr from_dnf(const std::vector<std::vector<Literal>>& dnf);

}  // namespace cqa

#endif  // CQA_LOGIC_TRANSFORM_H_
