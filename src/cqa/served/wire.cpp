#include "cqa/served/wire.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "cqa/logic/printer.h"
#include "cqa/util/bincode.h"

namespace cqa {
namespace served {

namespace {

using namespace bincode;

constexpr std::uint64_t kFrameChecksumSalt = 0xf4a3ec5c0dedULL;

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// send/recv with EINTR retry. MSG_NOSIGNAL: a peer that died mid-write
// must surface as EPIPE, not kill the process with SIGPIPE.
Status write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::internal(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

// Reads exactly len bytes. `any_read` reports whether a partial frame
// was consumed before EOF (a truncated frame is corruption; EOF on a
// frame boundary is a clean close). `deadline` < 0 blocks forever;
// otherwise each recv waits (via poll) only for the remaining budget
// and expiry returns kDeadlineExceeded -- possibly mid-read.
Status read_all(int fd, char* data, std::size_t len, bool* any_read,
                std::int64_t deadline) {
  std::size_t off = 0;
  while (off < len) {
    if (deadline >= 0) {
      const std::int64_t remaining = deadline - steady_now_ms();
      if (remaining <= 0) {
        return Status::deadline_exceeded("wire read timed out");
      }
      pollfd pfd{fd, POLLIN, 0};
      const int rc = poll(&pfd, 1,
                          static_cast<int>(remaining > 1000000 ? 1000000
                                                               : remaining));
      if (rc < 0 && errno != EINTR) {
        return Status::internal(std::string("poll: ") + std::strerror(errno));
      }
      if (rc <= 0) continue;  // timeout slice or EINTR: re-check budget
    }
    const ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0 && !*any_read) {
        return Status::cancelled("connection closed");
      }
      return Status::internal("connection closed mid-frame");
    }
    *any_read = true;
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status decode_error() {
  return Status::invalid("malformed wire payload");
}

void put_opt_f64(std::string* out, const std::optional<double>& v) {
  put_u8(out, v ? 1 : 0);
  put_f64(out, v ? *v : 0.0);
}

bool get_opt_f64(Reader* r, std::optional<double>* v) {
  std::uint8_t has;
  double d;
  if (!r->get_u8(&has) || !r->get_f64(&d)) return false;
  if (has) *v = d;
  return true;
}

void put_opt_rational(std::string* out,
                      const std::optional<Rational>& v) {
  put_u8(out, v ? 1 : 0);
  put_str(out, v ? v->to_string() : std::string());
}

bool get_opt_rational(Reader* r, std::optional<Rational>* v) {
  std::uint8_t has;
  std::string s;
  if (!r->get_u8(&has) || !r->get_str(&s)) return false;
  if (has) {
    auto parsed = Rational::from_string(s);
    if (!parsed.is_ok()) return false;
    *v = std::move(parsed).take();
  }
  return true;
}

}  // namespace

std::uint64_t frame_checksum(const std::string& body) {
  return bincode::fnv1a(body, kFrameChecksumSalt);
}

Status write_frame(int fd, MsgType type, std::uint64_t id,
                   const std::string& payload) {
  if (payload.size() + 10 > kMaxFrameBody) {
    return Status::invalid("frame payload over size bound");
  }
  std::string body;
  body.reserve(10 + payload.size());
  put_u8(&body, kWireVersion);
  put_u8(&body, static_cast<std::uint8_t>(type));
  put_u64(&body, id);
  body.append(payload);
  std::string buf;
  buf.reserve(12 + body.size());
  put_u32(&buf, static_cast<std::uint32_t>(body.size()));
  put_u64(&buf, frame_checksum(body));
  buf.append(body);
  return write_all(fd, buf.data(), buf.size());
}

Status read_frame(int fd, Frame* out, std::int64_t timeout_ms) {
  const std::int64_t deadline =
      timeout_ms < 0 ? -1 : steady_now_ms() + timeout_ms;
  bool any_read = false;
  char head[12];
  CQA_RETURN_IF_ERROR(read_all(fd, head, sizeof(head), &any_read, deadline));
  std::uint32_t body_len = 0;
  std::uint64_t checksum = 0;
  Reader hr(head, sizeof(head));
  hr.get_u32(&body_len);
  hr.get_u64(&checksum);
  if (body_len < 10 || body_len > kMaxFrameBody) {
    return Status::invalid("frame length out of bounds");
  }
  std::string body(body_len, '\0');
  CQA_RETURN_IF_ERROR(
      read_all(fd, body.data(), body.size(), &any_read, deadline));
  if (frame_checksum(body) != checksum) {
    return Status::invalid("frame checksum mismatch (corrupt wire)");
  }
  Reader r(body);
  std::uint8_t version = 0, type = 0;
  r.get_u8(&version);
  r.get_u8(&type);
  r.get_u64(&out->id);
  if (version != kWireVersion) {
    return Status::invalid("wire protocol version mismatch: got " +
                           std::to_string(version) + ", want " +
                           std::to_string(kWireVersion));
  }
  if (type < static_cast<std::uint8_t>(MsgType::kRequest) ||
      type > static_cast<std::uint8_t>(MsgType::kStatsReply)) {
    return Status::invalid("unknown frame type " + std::to_string(type));
  }
  out->type = static_cast<MsgType>(type);
  out->payload.assign(body, 10, body.size() - 10);
  return Status::ok();
}

std::string encode_request(const Request& request) {
  std::string out;
  out.reserve(128 + request.query.size());
  put_u8(&out, static_cast<std::uint8_t>(request.kind));
  put_str(&out, request.query);
  put_u64(&out, request.output_vars.size());
  for (const auto& v : request.output_vars) put_str(&out, v);
  put_f64(&out, request.budget.epsilon);
  put_f64(&out, request.budget.delta);
  put_i64(&out, request.budget.deadline_ms);
  put_u64(&out, request.budget.quota.max_qe_atoms);
  put_u64(&out, request.budget.quota.max_fm_rows);
  put_u64(&out, request.budget.quota.max_sweep_sections);
  put_u64(&out, request.budget.quota.max_bigint_bits);
  put_u64(&out, request.budget.quota.max_resident_bytes);
  put_u8(&out, request.strategy
                   ? static_cast<std::uint8_t>(*request.strategy)
                   : std::uint8_t{0xff});
  put_u64(&out, request.seed);
  put_u8(&out, request.vc_dim ? 1 : 0);
  put_f64(&out, request.vc_dim ? *request.vc_dim : 0.0);
  put_u64(&out, request.max_mc_samples);
  put_u8(&out, static_cast<std::uint8_t>(request.priority));
  put_u8(&out, static_cast<std::uint8_t>(request.aggregate_fn));
  put_u64(&out, request.bindings.size());
  for (const auto& [name, value] : request.bindings) {
    put_str(&out, name);
    put_str(&out, value.to_string());
  }
  return out;
}

Result<Request> decode_request(const std::string& payload) {
  Reader r(payload);
  Request req;
  std::uint8_t kind, strategy, has_vc, priority, aggregate_fn;
  std::uint64_t nvars, seed, max_mc, nbind;
  std::uint64_t q0, q1, q2, q3, q4;
  double vc = 0.0;
  if (!r.get_u8(&kind) || !r.get_str(&req.query) || !r.get_u64(&nvars)) {
    return decode_error();
  }
  if (kind > static_cast<std::uint8_t>(RequestKind::kAggregate)) {
    return Status::invalid("unknown request kind on wire");
  }
  req.kind = static_cast<RequestKind>(kind);
  for (std::uint64_t i = 0; i < nvars; ++i) {
    std::string v;
    if (!r.get_str(&v)) return decode_error();
    req.output_vars.push_back(std::move(v));
  }
  if (!r.get_f64(&req.budget.epsilon) || !r.get_f64(&req.budget.delta) ||
      !r.get_i64(&req.budget.deadline_ms) || !r.get_u64(&q0) ||
      !r.get_u64(&q1) || !r.get_u64(&q2) || !r.get_u64(&q3) ||
      !r.get_u64(&q4) || !r.get_u8(&strategy) || !r.get_u64(&seed) ||
      !r.get_u8(&has_vc) || !r.get_f64(&vc) || !r.get_u64(&max_mc) ||
      !r.get_u8(&priority) || !r.get_u8(&aggregate_fn) ||
      !r.get_u64(&nbind)) {
    return decode_error();
  }
  req.budget.quota.max_qe_atoms = static_cast<std::size_t>(q0);
  req.budget.quota.max_fm_rows = static_cast<std::size_t>(q1);
  req.budget.quota.max_sweep_sections = static_cast<std::size_t>(q2);
  req.budget.quota.max_bigint_bits = static_cast<std::size_t>(q3);
  req.budget.quota.max_resident_bytes = static_cast<std::size_t>(q4);
  if (strategy != 0xff) {
    if (strategy > static_cast<std::uint8_t>(VolumeStrategy::kHitAndRun)) {
      return Status::invalid("unknown volume strategy on wire");
    }
    req.strategy = static_cast<VolumeStrategy>(strategy);
  }
  req.seed = seed;
  if (has_vc) req.vc_dim = vc;
  req.max_mc_samples = static_cast<std::size_t>(max_mc);
  req.priority = priority < kNumPriorities
                     ? static_cast<Priority>(priority)
                     : Priority::kNormal;
  if (aggregate_fn > static_cast<std::uint8_t>(AggregateFn::kMax)) {
    return Status::invalid("unknown aggregate function on wire");
  }
  req.aggregate_fn = static_cast<AggregateFn>(aggregate_fn);
  for (std::uint64_t i = 0; i < nbind; ++i) {
    std::string name, value;
    if (!r.get_str(&name) || !r.get_str(&value)) return decode_error();
    auto parsed = Rational::from_string(value);
    if (!parsed.is_ok()) {
      return Status::invalid("malformed binding value on wire: " + value);
    }
    req.bindings.emplace_back(std::move(name), std::move(parsed).take());
  }
  if (!r.exhausted()) return decode_error();
  return req;
}

// Answer layout (the first three bytes are the answer_is_cacheable
// peek: ok flag, kind, answer status):
//   u8 ok
//   !ok: u8 status_code, str message
//   ok:  u8 kind, u8 answer_status, u8 truth(0/1/2=absent),
//        u8 has_formula + str printed_formula,
//        volume: opt exact, opt estimate, opt lower, opt upper,
//                u8 degraded, u64 points_evaluated, u64 points_requested,
//        opt mu, u8 has_growth + u64 ncoeffs + coeff strs,
//        opt aggregate,
//        guard: 5x u64 usage, u8 quota_tripped, str tripped_quota,
//               u8 rung, u8 shed, u8 worker_crashed, u8 worker_hung,
//        f64 elapsed_ms
std::string encode_answer(const Result<Answer>& result,
                          const VarTable* vars) {
  std::string out;
  if (!result.is_ok()) {
    put_u8(&out, 0);
    put_u8(&out, static_cast<std::uint8_t>(result.status().code()));
    put_str(&out, result.status().message());
    return out;
  }
  const Answer& a = result.value();
  put_u8(&out, 1);
  put_u8(&out, static_cast<std::uint8_t>(a.kind));
  put_u8(&out, static_cast<std::uint8_t>(a.status));
  put_u8(&out, a.truth ? (*a.truth ? 1 : 0) : 2);
  put_u8(&out, a.formula ? 1 : 0);
  put_str(&out, a.formula
                    ? (vars ? to_string(a.formula, *vars)
                            : to_string(a.formula))
                    : std::string());
  put_opt_rational(&out, a.volume.exact);
  put_opt_f64(&out, a.volume.estimate);
  put_opt_f64(&out, a.volume.lower);
  put_opt_f64(&out, a.volume.upper);
  put_u8(&out, a.volume.degraded ? 1 : 0);
  put_u64(&out, a.volume.points_evaluated);
  put_u64(&out, a.volume.points_requested);
  put_opt_rational(&out, a.mu);
  put_u8(&out, a.growth ? 1 : 0);
  put_u64(&out, a.growth ? a.growth->coeffs().size() : 0);
  if (a.growth) {
    for (const auto& c : a.growth->coeffs()) put_str(&out, c.to_string());
  }
  put_opt_rational(&out, a.aggregate);
  put_u64(&out, a.guard.usage.qe_atoms);
  put_u64(&out, a.guard.usage.fm_rows_peak);
  put_u64(&out, a.guard.usage.sweep_sections);
  put_u64(&out, a.guard.usage.bigint_bits_peak);
  put_u64(&out, a.guard.usage.resident_bytes);
  put_u8(&out, a.guard.quota_tripped ? 1 : 0);
  put_str(&out, a.guard.tripped_quota);
  put_u8(&out, static_cast<std::uint8_t>(a.guard.rung));
  put_u8(&out, a.guard.shed ? 1 : 0);
  put_u8(&out, a.guard.worker_crashed ? 1 : 0);
  put_u8(&out, a.guard.worker_hung ? 1 : 0);
  put_f64(&out, a.elapsed_ms);
  return out;
}

Status decode_answer(const std::string& payload, ConstraintDatabase* db,
                     Result<Answer>* out) {
  Reader r(payload);
  std::uint8_t ok;
  if (!r.get_u8(&ok)) return decode_error();
  if (!ok) {
    std::uint8_t code;
    std::string message;
    if (!r.get_u8(&code) || !r.get_str(&message) ||
        code > static_cast<std::uint8_t>(StatusCode::kResourceExhausted) ||
        code == 0) {
      return decode_error();
    }
    *out = Status(static_cast<StatusCode>(code), std::move(message));
    return Status::ok();
  }
  Answer a;
  std::uint8_t kind, status, truth, has_formula, degraded, has_growth;
  std::uint8_t quota_tripped, rung, shed, crashed, hung;
  std::string formula_text;
  std::uint64_t pe, pr, ncoeffs;
  if (!r.get_u8(&kind) || !r.get_u8(&status) || !r.get_u8(&truth) ||
      !r.get_u8(&has_formula) || !r.get_str(&formula_text)) {
    return decode_error();
  }
  if (kind > static_cast<std::uint8_t>(RequestKind::kAggregate) ||
      status > static_cast<std::uint8_t>(AnswerStatus::kDegraded) ||
      truth > 2) {
    return decode_error();
  }
  a.kind = static_cast<RequestKind>(kind);
  a.status = static_cast<AnswerStatus>(status);
  if (truth != 2) a.truth = (truth == 1);
  if (has_formula && db != nullptr) {
    auto parsed = db->parse(formula_text);
    if (!parsed.is_ok()) {
      return Status::internal("remote formula failed to re-parse: " +
                              parsed.status().message());
    }
    a.formula = parsed.value();
  }
  if (!get_opt_rational(&r, &a.volume.exact) ||
      !get_opt_f64(&r, &a.volume.estimate) ||
      !get_opt_f64(&r, &a.volume.lower) ||
      !get_opt_f64(&r, &a.volume.upper) || !r.get_u8(&degraded) ||
      !r.get_u64(&pe) || !r.get_u64(&pr)) {
    return decode_error();
  }
  a.volume.degraded = degraded != 0;
  a.volume.points_evaluated = static_cast<std::size_t>(pe);
  a.volume.points_requested = static_cast<std::size_t>(pr);
  if (!get_opt_rational(&r, &a.mu) || !r.get_u8(&has_growth) ||
      !r.get_u64(&ncoeffs)) {
    return decode_error();
  }
  if (has_growth) {
    std::vector<Rational> coeffs;
    for (std::uint64_t i = 0; i < ncoeffs; ++i) {
      std::string c;
      if (!r.get_str(&c)) return decode_error();
      auto parsed = Rational::from_string(c);
      if (!parsed.is_ok()) return decode_error();
      coeffs.push_back(std::move(parsed).take());
    }
    a.growth = UPoly(std::move(coeffs));
  }
  if (!get_opt_rational(&r, &a.aggregate) ||
      !r.get_u64(&a.guard.usage.qe_atoms) ||
      !r.get_u64(&a.guard.usage.fm_rows_peak) ||
      !r.get_u64(&a.guard.usage.sweep_sections) ||
      !r.get_u64(&a.guard.usage.bigint_bits_peak) ||
      !r.get_u64(&a.guard.usage.resident_bytes) ||
      !r.get_u8(&quota_tripped) || !r.get_str(&a.guard.tripped_quota) ||
      !r.get_u8(&rung) || !r.get_u8(&shed) || !r.get_u8(&crashed) ||
      !r.get_u8(&hung) || !r.get_f64(&a.elapsed_ms)) {
    return decode_error();
  }
  if (rung > static_cast<std::uint8_t>(guard::Rung::kTrivialHalf)) {
    return decode_error();
  }
  a.guard.quota_tripped = quota_tripped != 0;
  a.guard.rung = static_cast<guard::Rung>(rung);
  a.guard.shed = shed != 0;
  a.guard.worker_crashed = crashed != 0;
  a.guard.worker_hung = hung != 0;
  if (!r.exhausted()) return decode_error();
  *out = std::move(a);
  return Status::ok();
}

bool answer_is_cacheable(const std::string& payload) {
  // u8 ok == 1, u8 kind, u8 answer_status == kOk.
  return payload.size() >= 3 && payload[0] == 1 &&
         payload[2] == static_cast<char>(AnswerStatus::kOk);
}

}  // namespace served
}  // namespace cqa
