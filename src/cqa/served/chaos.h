// Seeded wire chaos for cqa::served: a TCP/unix proxy (and an
// in-process socket seam) that injects network faults with the same
// deterministic SplitMix64 discipline guard::FaultInjector gives the
// engines. A chaos schedule is a (seed, rates) pair; replaying it
// replays the exact fault sequence, so a drill that survived once keeps
// surviving -- or fails reproducibly.
//
//   guard::FaultPlan plan;
//   plan.seed = 7;
//   plan.rate[size_t(guard::FaultSite::kWireTornFrame)] = 0.05;
//   ChaosOptions opt;
//   opt.plan = plan;
//   opt.upstream_unix = "/tmp/cqa.sock";
//   ChaosProxy proxy(opt);
//   proxy.start();                 // listen on an ephemeral TCP port
//   Client::connect_tcp("127.0.0.1", proxy.port());
//
// Faults fire per forwarded chunk (or per accepted connection for
// blackhole), drawn from the wire sites of guard::FaultSite:
//
//   kWireTornFrame     forward half the chunk, then sever both sides
//   kWireStalledWrite  nap stall_ms before forwarding (latency)
//   kWireDisconnect    sever both sides without forwarding
//   kWireBitFlip       flip one deterministic bit of the chunk
//   kWireBlackhole     accept the connection, forward nothing, ever
//
// The proxy owns a *private* FaultInjector -- it never touches the
// process-global injector slot, so wire chaos composes with (or stays
// isolated from) in-process engine chaos.

#ifndef CQA_SERVED_CHAOS_H_
#define CQA_SERVED_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cqa/guard/fault.h"
#include "cqa/util/status.h"

namespace cqa {
namespace served {

struct ChaosOptions {
  /// Fault rates; only the kWire* sites are consulted.
  guard::FaultPlan plan;
  /// Listen side: non-empty = unix-domain socket path, else TCP.
  std::string listen_unix;
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  // 0 = ephemeral; see ChaosProxy::port()
  /// Upstream (the real server): non-empty = unix path, else TCP.
  std::string upstream_unix;
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  /// Nap applied by kWireStalledWrite.
  std::int64_t stall_ms = 200;
  /// Forwarding chunk size; faults fire per chunk.
  std::size_t chunk_bytes = 4096;
};

struct ChaosStats {
  std::uint64_t connections = 0;
  std::uint64_t chunks = 0;       // chunks forwarded (either direction)
  std::uint64_t torn = 0;
  std::uint64_t stalled = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t blackholes = 0;
};

/// A man-in-the-middle that forwards bytes between each accepted client
/// and its own upstream connection, applying the fault plan per chunk.
/// One acceptor thread plus two pump threads per live connection.
class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosOptions options);
  ~ChaosProxy();  // stop()s if still running

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  Status start();
  void stop();  // idempotent

  /// Resolved listen port (TCP mode, after start()).
  std::uint16_t port() const { return resolved_port_; }

  ChaosStats stats() const;
  const guard::FaultInjector& injector() const { return injector_; }

 private:
  struct Conn {
    int client_fd = -1;
    int upstream_fd = -1;
    std::thread up;    // client -> upstream
    std::thread down;  // upstream -> client
    std::atomic<bool> dead{false};
  };

  void accept_loop();
  /// Forwards src -> dst in chunks, consulting the injector per chunk;
  /// severs the whole connection (both fds) on torn/disconnect faults.
  void pump(std::shared_ptr<Conn> conn, int src, int dst);
  void sever(Conn& conn);
  void reap_conns(bool all);

  ChaosOptions options_;
  guard::FaultInjector injector_;

  int listener_ = -1;
  std::uint16_t resolved_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> torn_{0};
  std::atomic<std::uint64_t> stalled_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> bit_flips_{0};
  std::atomic<std::uint64_t> blackholes_{0};
};

/// In-process seam for exact-fault unit tests: wraps one connected fd
/// and applies the wire sites per send() with a private injector, no
/// proxy or extra threads involved. Deterministic byte positions: a
/// torn send cuts at half, a bit flip lands on a SplitMix64-chosen bit.
class ChaosSocket {
 public:
  ChaosSocket(int fd, guard::FaultInjector* injector)
      : fd_(fd), injector_(injector) {}

  /// Sends `bytes` through the fault gauntlet. Returns ok when all
  /// bytes (possibly corrupted) were written; kAborted-flavored
  /// kInternal when a torn/disconnect fault severed the stream (the fd
  /// is shut down for writing).
  Status send(const std::string& bytes);

 private:
  int fd_ = -1;
  guard::FaultInjector* injector_ = nullptr;
  std::uint64_t counter_ = 0;
};

}  // namespace served
}  // namespace cqa

#endif  // CQA_SERVED_CHAOS_H_
