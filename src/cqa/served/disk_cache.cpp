#include "cqa/served/disk_cache.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "cqa/util/bincode.h"

namespace cqa {
namespace served {

namespace {

constexpr char kMagic[] = "CQADC";      // 5 bytes, then format version
// v2: answer payloads grew the guard worker_hung byte; v1 records would
// fail decode_answer, so a version bump drops them wholesale at open().
constexpr std::uint8_t kFormatVersion = 2;
constexpr std::uint64_t kChecksumSalt = 0xd15cc4c4e5a17ULL;

std::uint64_t record_checksum(const std::string& key,
                              const std::string& value) {
  return bincode::fnv1a(value, bincode::fnv1a(key, kChecksumSalt));
}

}  // namespace

DiskCache::DiskCache(std::string path, std::size_t capacity)
    : path_(std::move(path)), capacity_(capacity) {}

Status DiskCache::open() {
  std::lock_guard<std::mutex> lock(mu_);
  index_.clear();

  // Load phase: validate the header, then records until the first sign
  // of corruption. Order matters only for last-write-wins duplicates.
  std::vector<std::pair<std::string, std::string>> records;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      bincode::Reader r(bytes);
      bool header_ok = bytes.size() >= 6 &&
                       bytes.compare(0, 5, kMagic) == 0 &&
                       static_cast<std::uint8_t>(bytes[5]) == kFormatVersion;
      if (header_ok) {
        bincode::Reader body(bytes.data() + 6, bytes.size() - 6);
        while (!body.exhausted()) {
          std::string key, value;
          std::uint64_t sum;
          if (!body.get_str(&key) || !body.get_str(&value) ||
              !body.get_u64(&sum) || record_checksum(key, value) != sum) {
            // Truncated tail or bit rot: drop this record and the rest.
            ++dropped_corrupt_;
            break;
          }
          records.emplace_back(std::move(key), std::move(value));
        }
      } else if (!bytes.empty()) {
        ++dropped_corrupt_;  // unreadable header: start empty
      }
    }
  }
  for (auto& [key, value] : records) {
    if (index_.size() >= capacity_ && index_.find(key) == index_.end()) {
      continue;
    }
    index_[std::move(key)] = std::move(value);
  }
  loaded_ = index_.size();

  // Compact rewrite: duplicates collapse, the corrupt tail disappears.
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    return Status::internal("disk cache unwritable: " + path_);
  }
  std::string header(kMagic, 5);
  header.push_back(static_cast<char>(kFormatVersion));
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const auto& [key, value] : index_) append_record(key, value);
  out_.flush();
  return Status::ok();
}

std::optional<std::string> DiskCache::lookup(
    const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void DiskCache::store(const std::string& fingerprint,
                      const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    if (index_.size() >= capacity_) {
      ++rejected_full_;
      return;
    }
    index_.emplace(fingerprint, value);
  } else {
    if (it->second == value) return;  // identical answer: nothing to do
    it->second = value;
  }
  ++stores_;
  if (out_) {
    append_record(fingerprint, value);
    out_.flush();
  }
}

void DiskCache::append_record(const std::string& key,
                              const std::string& value) {
  std::string rec;
  rec.reserve(24 + key.size() + value.size());
  bincode::put_str(&rec, key);
  bincode::put_str(&rec, value);
  bincode::put_u64(&rec, record_checksum(key, value));
  out_.write(rec.data(), static_cast<std::streamsize>(rec.size()));
}

DiskCacheStats DiskCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DiskCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.stores = stores_;
  s.loaded = loaded_;
  s.dropped_corrupt = dropped_corrupt_;
  s.rejected_full = rejected_full_;
  s.entries = index_.size();
  return s;
}

}  // namespace served
}  // namespace cqa
