// Client for a cqa::served server: a thin blocking wrapper over the
// wire protocol.
//
//   auto client = served::Client::connect_unix("/tmp/cqa.sock");
//   Result<Answer> a = client.value().call(
//       Request::volume("x^2 + y^2 <= 1").vars({"x", "y"}));
//
// call() is synchronous request/response; answers carry the same
// degradation status and guard report a local Session::run returns
// (guard.shed when the router shed the request at admission,
// guard.worker_crashed when its shard died mid-request). Rewrite
// formulas are re-parsed into the client's own ConstraintDatabase.
//
// A Client owns one connection and is NOT thread-safe; open one per
// thread (the server multiplexes connections cheaply).

#ifndef CQA_SERVED_CLIENT_H_
#define CQA_SERVED_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cqa/core/constraint_database.h"
#include "cqa/runtime/request.h"
#include "cqa/served/wire.h"
#include "cqa/util/status.h"

namespace cqa {
namespace served {

class Client {
 public:
  static Result<Client> connect_unix(const std::string& path);
  static Result<Client> connect_tcp(const std::string& host,
                                    std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One round trip: encode, send, block for the matching answer.
  /// `timeout_ms` < 0 waits forever; on expiry the connection is left
  /// in an indeterminate state and the call returns kDeadlineExceeded
  /// (reconnect to keep going -- frames cannot be un-sent).
  Result<Answer> call(const Request& request, std::int64_t timeout_ms = -1);

  /// Health check: round-trips an opaque token. Ok iff the echo matches.
  Status ping(std::int64_t timeout_ms = 2000);

  /// The server's plain-text stats dump (router counters plus each
  /// shard's pid, in-flight gauge, and metrics registry).
  Result<std::string> stats(std::int64_t timeout_ms = 5000);

 private:
  explicit Client(int fd);
  Status roundtrip(MsgType type, const std::string& payload,
                   std::int64_t timeout_ms, Frame* reply);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  /// Variable space for re-parsing formula-bearing answers.
  std::unique_ptr<ConstraintDatabase> db_;
};

}  // namespace served
}  // namespace cqa

#endif  // CQA_SERVED_CLIENT_H_
