// Client for a cqa::served server: a blocking wrapper over the wire
// protocol that survives a hostile network.
//
//   auto client = served::Client::connect_unix("/tmp/cqa.sock");
//   Result<Answer> a = client.value().call(
//       Request::volume("x^2 + y^2 <= 1").vars({"x", "y"}));
//
// call() is synchronous request/response; answers carry the same
// degradation status and guard report a local Session::run returns
// (guard.shed when the router shed the request at admission,
// guard.worker_crashed / guard.worker_hung when its shard died or was
// watchdog-killed mid-request). Rewrite formulas are re-parsed into the
// client's own ConstraintDatabase.
//
// Failure discipline. The client remembers its endpoint and owns a
// poisoned flag: any failure that can leave the stream unsynchronized
// (expiry or EOF mid-frame, a corrupt frame, a failed send) poisons the
// connection, and the next call re-dials transparently. Within one
// call(), failed attempts auto-retry under a safe-retry predicate:
//
//   - only requests that are idempotent by fingerprint (no CancelToken
//     attached -- the same bytes name the same answer), and
//   - only on connection-level failures: a failed (re)connect, a failed
//     send, or a clean EOF before any answer byte. Once a single answer
//     byte has arrived -- torn frame, checksum mismatch, mid-frame
//     expiry -- the call returns the typed error instead; the caller
//     decides whether to re-issue.
//
// Retries back off with capped decorrelated jitter, and every attempt's
// deadline is carved from the caller's overall timeout_ms budget: a
// call never outlives its budget just because it retried.
//
// A Client owns one connection and is NOT thread-safe; open one per
// thread (the server multiplexes connections cheaply).

#ifndef CQA_SERVED_CLIENT_H_
#define CQA_SERVED_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cqa/core/constraint_database.h"
#include "cqa/runtime/request.h"
#include "cqa/served/wire.h"
#include "cqa/util/status.h"

namespace cqa {
namespace served {

struct ClientOptions {
  /// Attempts per call() (>= 1); attempts past the first fire only when
  /// the safe-retry predicate holds.
  int max_attempts = 4;
  /// Decorrelated-jitter backoff between attempts: each nap is drawn
  /// from [base, 3 * previous], capped, then clipped to the remaining
  /// deadline budget.
  std::int64_t backoff_base_ms = 10;
  std::int64_t backoff_cap_ms = 500;
  /// Bound on TCP connect() (black-holed hosts accept SYNs into
  /// nowhere; an unbounded connect would hang forever). <= 0 blocks.
  std::int64_t connect_timeout_ms = 2000;
  /// Seed of the jitter stream -- deterministic backoff for tests.
  std::uint64_t seed = 0x5eedULL;
};

/// Resilience counters, cumulative over the client's lifetime.
struct ClientRetryStats {
  std::uint64_t retries = 0;     // attempts beyond the first, per call()
  std::uint64_t reconnects = 0;  // successful re-dials of the endpoint
};

class Client {
 public:
  static Result<Client> connect_unix(const std::string& path,
                                     ClientOptions options = {});
  static Result<Client> connect_tcp(const std::string& host,
                                    std::uint16_t port,
                                    ClientOptions options = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One logical round trip (possibly several attempts under the
  /// safe-retry predicate). `timeout_ms` < 0 waits forever; on expiry
  /// the call returns kDeadlineExceeded -- if the expiry hit mid-frame
  /// the connection is poisoned and the next call reconnects, otherwise
  /// the connection stays usable and the stale late answer is discarded
  /// by id when it eventually lands.
  Result<Answer> call(const Request& request, std::int64_t timeout_ms = -1);

  /// Health check: round-trips an opaque token. Ok iff the echo matches.
  Status ping(std::int64_t timeout_ms = 2000);

  /// The server's plain-text stats dump (router counters plus each
  /// shard's pid, in-flight gauge, and metrics registry).
  Result<std::string> stats(std::int64_t timeout_ms = 5000);

  ClientRetryStats retry_stats() const { return retry_stats_; }
  /// Test seam: a healthy (un-poisoned) live connection?
  bool connected() const { return fd_ >= 0 && !poisoned_; }

 private:
  Client(int fd, ClientOptions options);
  /// Single-attempt round trip. Any failure that may have consumed
  /// answer bytes (or left a send half-written) poisons the connection;
  /// `*safe_retry` (may be null) is set true only for failures before
  /// any answer byte arrived (send failure, clean EOF).
  Status roundtrip(MsgType type, const std::string& payload,
                   std::int64_t timeout_ms, Frame* reply, bool* safe_retry);
  /// Re-dials the remembered endpoint when fd_ is gone or poisoned.
  Status ensure_connected(std::int64_t timeout_ms);
  /// Next decorrelated-jitter nap, advancing the seeded stream.
  std::int64_t next_backoff(std::int64_t prev_ms);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  bool poisoned_ = false;
  /// Endpoint memory for reconnects: unix when unix_path_ is non-empty.
  std::string unix_path_;
  std::string tcp_host_;
  std::uint16_t tcp_port_ = 0;
  ClientOptions options_;
  ClientRetryStats retry_stats_;
  std::uint64_t jitter_state_ = 0;
  /// Variable space for re-parsing formula-bearing answers.
  std::unique_ptr<ConstraintDatabase> db_;
};

}  // namespace served
}  // namespace cqa

#endif  // CQA_SERVED_CLIENT_H_
