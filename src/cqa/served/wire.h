// cqa::served wire protocol: length-prefixed binary frames over
// TCP/unix-domain stream sockets.
//
// The framing extends the scheduler's length-prefixed fingerprint
// discipline (fixed-width little-endian integers, u64 length prefixes
// on every string) to request/answer transport:
//
//   frame := u32 LE body_len | u64 LE checksum | body
//   body  := u8 version | u8 type | u64 LE id | payload
//
// `checksum` is salted FNV-1a over the body: a bit flipped anywhere in
// transit (hostile proxy, failing NIC) fails the frame as
// kInvalidArgument before any payload decoding, so corruption is a
// typed connection-level error, never a silently wrong answer. `id` is
// a caller-chosen correlation id: clients may pipeline many frames on
// one connection and match answers out of order; the shard router
// rewrites ids when forwarding to workers and restores them on the way
// back. A version byte other than kWireVersion rejects the frame before
// any payload decoding.
//
// Payload encodings cover every answer-affecting Request field and the
// full Answer -- including the volume bars, degradation status, and the
// guard report -- so a remote answer carries the same honest error bars
// and accounting a local Session::run() returns. Rationals travel as
// their canonical decimal string; rewrite formulas travel as their
// printed form and are re-parsed client-side. kCells answers are the
// one deliberate exception: linear-cell objects are not
// wire-serializable, so servers answer them with kUnsupported.

#ifndef CQA_SERVED_WIRE_H_
#define CQA_SERVED_WIRE_H_

#include <cstdint>
#include <string>

#include "cqa/core/constraint_database.h"
#include "cqa/runtime/request.h"
#include "cqa/util/status.h"

namespace cqa {
namespace served {

inline constexpr std::uint8_t kWireVersion = 2;  // v2: frame checksum
/// Upper bound on one frame body; larger length prefixes are treated as
/// corruption and fail the connection instead of allocating blindly.
inline constexpr std::uint32_t kMaxFrameBody = 64u << 20;

enum class MsgType : std::uint8_t {
  kRequest = 1,     // client -> server: encoded Request
  kAnswer = 2,      // server -> client: encoded Result<Answer>
  kPing = 3,        // health check; payload echoed back
  kPong = 4,
  kStats = 5,       // server aggregates per-shard metrics
  kStatsReply = 6,  // plain-text stats dump
};

struct Frame {
  MsgType type = MsgType::kRequest;
  std::uint64_t id = 0;
  std::string payload;
};

/// Blocking full-frame write/read on a stream socket. write_frame is
/// atomic per call (callers serialize per-fd); read_frame returns
/// kUnavailable-style Status::cancelled("connection closed") on clean
/// EOF before any byte, kInternal on I/O errors and mid-frame EOF
/// (torn frame), kInvalidArgument on a malformed, corrupt (checksum
/// mismatch), or version-mismatched frame.
///
/// `timeout_ms` >= 0 bounds the whole read: each recv is preceded by a
/// poll against the remaining budget and expiry returns
/// kDeadlineExceeded -- possibly mid-frame, leaving the stream
/// unsynchronized (callers must treat the connection as poisoned).
/// The default -1 blocks forever, the server/worker discipline.
Status write_frame(int fd, MsgType type, std::uint64_t id,
                   const std::string& payload);
Status read_frame(int fd, Frame* out, std::int64_t timeout_ms = -1);

/// Salted FNV-1a over a frame body -- exposed so tests and the chaos
/// layer can craft valid (and deliberately invalid) frames.
std::uint64_t frame_checksum(const std::string& body);

/// Request payload codec. Every answer-affecting field round-trips;
/// the process-local bits (cancel token pointer, priority lane) travel
/// too except `cancel`, which cannot cross a process boundary and is
/// always null after decode.
std::string encode_request(const Request& request);
Result<Request> decode_request(const std::string& payload);

/// Answer payload codec. `vars` (may be null) names variables when
/// printing a rewrite formula; `db` (may be null) re-parses it on
/// decode -- when null, formula-bearing answers decode with a null
/// formula rather than failing, so thin routers can still peek.
std::string encode_answer(const Result<Answer>& result,
                          const VarTable* vars);
Status decode_answer(const std::string& payload, ConstraintDatabase* db,
                     Result<Answer>* out);

/// True when an encoded answer payload is a full-fidelity success
/// (is_ok() and AnswerStatus::kOk): the only answers the persistent
/// result cache stores. Peeks the header bytes without a full decode.
bool answer_is_cacheable(const std::string& payload);

}  // namespace served
}  // namespace cqa

#endif  // CQA_SERVED_WIRE_H_
