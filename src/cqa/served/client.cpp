#include "cqa/served/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "cqa/guard/fault.h"

namespace cqa {
namespace served {

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget against an absolute deadline (-1 = unbounded).
std::int64_t remaining_ms(std::int64_t deadline) {
  if (deadline < 0) return -1;
  return deadline - now_ms();
}

Result<int> dial_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::invalid("unix socket path too long: " + path);
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::internal("socket(AF_UNIX) failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return Status::internal("connect failed: " + path + " (" +
                            std::strerror(errno) + ")");
  }
  return fd;
}

/// Non-blocking connect bounded by timeout_ms (<= 0 blocks): a
/// black-holed host that swallows SYNs must cost the timeout, not
/// the kernel's multi-minute default.
Result<int> dial_tcp(const std::string& host, std::uint16_t port,
                     std::int64_t timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::internal("socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::invalid("bad host: " + host);
  }
  const std::string where = host + ":" + std::to_string(port);
  const int flags = fcntl(fd, F_GETFL, 0);
  if (timeout_ms > 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (timeout_ms <= 0 || errno != EINPROGRESS) {
      close(fd);
      return Status::internal("connect failed: " + where + " (" +
                              std::strerror(errno) + ")");
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const std::int64_t deadline = now_ms() + timeout_ms;
    for (;;) {
      const std::int64_t left = deadline - now_ms();
      if (left <= 0) {
        close(fd);
        return Status::deadline_exceeded("connect timed out: " + where);
      }
      const int rc = poll(&pfd, 1, static_cast<int>(left));
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0) {
        close(fd);
        return Status::internal("poll failed during connect");
      }
      if (rc > 0) break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      close(fd);
      return Status::internal("connect failed: " + where + " (" +
                              std::strerror(err != 0 ? err : errno) + ")");
    }
  }
  if (timeout_ms > 0) fcntl(fd, F_SETFL, flags);
  return fd;
}

}  // namespace

Client::Client(int fd, ClientOptions options)
    : fd_(fd),
      options_(options),
      jitter_state_(options.seed),
      db_(std::make_unique<ConstraintDatabase>()) {}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_id_(other.next_id_),
      poisoned_(other.poisoned_),
      unix_path_(std::move(other.unix_path_)),
      tcp_host_(std::move(other.tcp_host_)),
      tcp_port_(other.tcp_port_),
      options_(other.options_),
      retry_stats_(other.retry_stats_),
      jitter_state_(other.jitter_state_),
      db_(std::move(other.db_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    poisoned_ = other.poisoned_;
    unix_path_ = std::move(other.unix_path_);
    tcp_host_ = std::move(other.tcp_host_);
    tcp_port_ = other.tcp_port_;
    options_ = other.options_;
    retry_stats_ = other.retry_stats_;
    jitter_state_ = other.jitter_state_;
    db_ = std::move(other.db_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Result<Client> Client::connect_unix(const std::string& path,
                                    ClientOptions options) {
  auto fd = dial_unix(path);
  if (!fd.is_ok()) return fd.status();
  Client client(fd.value(), options);
  client.unix_path_ = path;
  return client;
}

Result<Client> Client::connect_tcp(const std::string& host,
                                   std::uint16_t port,
                                   ClientOptions options) {
  auto fd = dial_tcp(host, port, options.connect_timeout_ms);
  if (!fd.is_ok()) return fd.status();
  Client client(fd.value(), options);
  client.tcp_host_ = host;
  client.tcp_port_ = port;
  return client;
}

Status Client::ensure_connected(std::int64_t timeout_ms) {
  if (fd_ >= 0 && !poisoned_) return Status::ok();
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  std::int64_t connect_budget = options_.connect_timeout_ms;
  if (timeout_ms >= 0) {
    connect_budget = connect_budget <= 0
                         ? timeout_ms
                         : std::min(connect_budget, timeout_ms);
  }
  auto fd = unix_path_.empty()
                ? dial_tcp(tcp_host_, tcp_port_, connect_budget)
                : dial_unix(unix_path_);
  if (!fd.is_ok()) return fd.status();
  fd_ = fd.value();
  poisoned_ = false;
  ++retry_stats_.reconnects;
  return Status::ok();
}

Status Client::roundtrip(MsgType type, const std::string& payload,
                         std::int64_t timeout_ms, Frame* reply,
                         bool* safe_retry) {
  if (safe_retry != nullptr) *safe_retry = false;
  if (fd_ < 0) return Status::internal("client not connected");
  if (poisoned_) return Status::internal("client connection poisoned");
  const std::uint64_t id = next_id_++;
  Status sent = write_frame(fd_, type, id, payload);
  if (!sent.is_ok()) {
    // A failed send may be half-written; the stream is unusable, but no
    // answer byte ever arrived, so an idempotent request may retry.
    poisoned_ = true;
    if (safe_retry != nullptr) *safe_retry = true;
    return sent;
  }
  const std::int64_t deadline =
      timeout_ms < 0 ? -1 : now_ms() + timeout_ms;
  for (;;) {
    std::int64_t left = -1;
    if (deadline >= 0) {
      left = deadline - now_ms();
      if (left <= 0) {
        // Expired while *waiting*, with no frame bytes consumed: the
        // stream is still synchronized, so keep the connection. The
        // late answer carries a stale id and is discarded by the next
        // call's id-matching loop.
        return Status::deadline_exceeded("served call timed out");
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int rc = poll(
          &pfd, 1, static_cast<int>(left > 1000000 ? 1000000 : left));
      if (rc < 0 && errno != EINTR) {
        poisoned_ = true;
        return Status::internal("poll failed");
      }
      if (rc <= 0) continue;
    }
    Status got = read_frame(fd_, reply, left);
    if (!got.is_ok()) {
      // Every read failure poisons: clean EOF means the fd is dead;
      // everything else (torn frame, checksum mismatch, mid-frame
      // expiry) means unknown bytes were consumed.
      poisoned_ = true;
      if (got.code() == StatusCode::kCancelled && safe_retry != nullptr) {
        // Clean EOF before any byte of *this* frame: connection-level.
        *safe_retry = true;
      }
      return got;
    }
    // A lone client is strictly request/response, so any mismatched id
    // is a stale answer from an abandoned (timed-out) call; skip it.
    if (reply->id == id) return Status::ok();
  }
}

std::int64_t Client::next_backoff(std::int64_t prev_ms) {
  // Decorrelated jitter: uniform in [base, 3 * prev], capped. The
  // SplitMix64 stream is seeded, so test schedules replay exactly.
  jitter_state_ = guard::fault_mix(jitter_state_ ^ 0xbac0ffULL);
  const std::int64_t lo = std::max<std::int64_t>(1, options_.backoff_base_ms);
  const std::int64_t hi = std::max(lo + 1, prev_ms * 3);
  const std::int64_t span = hi - lo;
  const std::int64_t nap =
      lo + static_cast<std::int64_t>(
               jitter_state_ % static_cast<std::uint64_t>(span));
  return std::min(nap, std::max(lo, options_.backoff_cap_ms));
}

Result<Answer> Client::call(const Request& request, std::int64_t timeout_ms) {
  const std::int64_t deadline =
      timeout_ms < 0 ? -1 : now_ms() + timeout_ms;
  // Idempotent by fingerprint: the encoded bytes fully name the answer.
  // A cancel token is process-local, non-reproducible state, so its
  // presence marks the one request shape we never silently re-issue.
  const bool idempotent = request.cancel == nullptr;
  const std::string payload = encode_request(request);
  const int attempts = std::max(1, options_.max_attempts);
  std::int64_t nap_ms = options_.backoff_base_ms;
  Status last = Status::internal("served call never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retry_stats_.retries;
      nap_ms = next_backoff(nap_ms);
      std::int64_t nap = nap_ms;
      const std::int64_t left = remaining_ms(deadline);
      if (deadline >= 0) {
        if (left <= 0) return Status::deadline_exceeded("served call timed out");
        nap = std::min(nap, left / 2);  // leave room to actually try
      }
      if (nap > 0) usleep(static_cast<useconds_t>(nap * 1000));
    }
    Status conn = ensure_connected(remaining_ms(deadline));
    if (!conn.is_ok()) {
      // Nothing was ever sent: always safe to try again (even a
      // non-idempotent request), budget permitting.
      last = std::move(conn);
      if (last.code() == StatusCode::kInvalidArgument) return last;
      continue;
    }
    Frame reply;
    bool safe_retry = false;
    Status s = roundtrip(MsgType::kRequest, payload, remaining_ms(deadline),
                         &reply, &safe_retry);
    if (s.is_ok()) {
      if (reply.type != MsgType::kAnswer) {
        return Status::internal("served: unexpected reply type");
      }
      Result<Answer> out{Status::internal("undecoded")};
      CQA_RETURN_IF_ERROR(decode_answer(reply.payload, db_.get(), &out));
      return out;
    }
    last = std::move(s);
    if (last.code() == StatusCode::kDeadlineExceeded) return last;
    if (!safe_retry || !idempotent) return last;
  }
  return last;
}

Status Client::ping(std::int64_t timeout_ms) {
  CQA_RETURN_IF_ERROR(ensure_connected(timeout_ms));
  const std::string token = "cqa-ping-" + std::to_string(next_id_);
  Frame reply;
  CQA_RETURN_IF_ERROR(
      roundtrip(MsgType::kPing, token, timeout_ms, &reply, nullptr));
  if (reply.type != MsgType::kPong || reply.payload != token) {
    return Status::internal("served: bad pong");
  }
  return Status::ok();
}

Result<std::string> Client::stats(std::int64_t timeout_ms) {
  CQA_RETURN_IF_ERROR(ensure_connected(timeout_ms));
  Frame reply;
  Status s = roundtrip(MsgType::kStats, "", timeout_ms, &reply, nullptr);
  if (!s.is_ok()) return s;
  if (reply.type != MsgType::kStatsReply) {
    return Status::internal("served: unexpected reply type");
  }
  return std::move(reply.payload);
}

}  // namespace served
}  // namespace cqa
