#include "cqa/served/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace cqa {
namespace served {

namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Client::Client(int fd)
    : fd_(fd), db_(std::make_unique<ConstraintDatabase>()) {}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_id_(other.next_id_), db_(std::move(other.db_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    next_id_ = other.next_id_;
    db_ = std::move(other.db_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Result<Client> Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::invalid("unix socket path too long: " + path);
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::internal("socket(AF_UNIX) failed");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return Status::internal("connect failed: " + path + " (" +
                            std::strerror(errno) + ")");
  }
  return Client(fd);
}

Result<Client> Client::connect_tcp(const std::string& host,
                                   std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::internal("socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::invalid("bad host: " + host);
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return Status::internal("connect failed: " + host + ":" +
                            std::to_string(port) + " (" +
                            std::strerror(errno) + ")");
  }
  return Client(fd);
}

Status Client::roundtrip(MsgType type, const std::string& payload,
                         std::int64_t timeout_ms, Frame* reply) {
  if (fd_ < 0) return Status::internal("client not connected");
  const std::uint64_t id = next_id_++;
  CQA_RETURN_IF_ERROR(write_frame(fd_, type, id, payload));
  const std::int64_t deadline =
      timeout_ms < 0 ? -1 : now_ms() + timeout_ms;
  for (;;) {
    if (deadline >= 0) {
      const std::int64_t remaining = deadline - now_ms();
      if (remaining <= 0) {
        return Status::deadline_exceeded("served call timed out");
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int rc =
          poll(&pfd, 1, static_cast<int>(
                            remaining > 1000000 ? 1000000 : remaining));
      if (rc < 0 && errno != EINTR) {
        return Status::internal("poll failed");
      }
      if (rc <= 0) continue;
    }
    CQA_RETURN_IF_ERROR(read_frame(fd_, reply));
    // A lone client is strictly request/response, so any mismatched id
    // is a stale answer from an abandoned (timed-out) call; skip it.
    if (reply->id == id) return Status::ok();
  }
}

Result<Answer> Client::call(const Request& request, std::int64_t timeout_ms) {
  Frame reply;
  Status s =
      roundtrip(MsgType::kRequest, encode_request(request), timeout_ms,
                &reply);
  if (!s.is_ok()) return s;
  if (reply.type != MsgType::kAnswer) {
    return Status::internal("served: unexpected reply type");
  }
  Result<Answer> out{Status::internal("undecoded")};
  CQA_RETURN_IF_ERROR(decode_answer(reply.payload, db_.get(), &out));
  return out;
}

Status Client::ping(std::int64_t timeout_ms) {
  const std::string token = "cqa-ping-" + std::to_string(next_id_);
  Frame reply;
  CQA_RETURN_IF_ERROR(roundtrip(MsgType::kPing, token, timeout_ms, &reply));
  if (reply.type != MsgType::kPong || reply.payload != token) {
    return Status::internal("served: bad pong");
  }
  return Status::ok();
}

Result<std::string> Client::stats(std::int64_t timeout_ms) {
  Frame reply;
  Status s = roundtrip(MsgType::kStats, "", timeout_ms, &reply);
  if (!s.is_ok()) return s;
  if (reply.type != MsgType::kStatsReply) {
    return Status::internal("served: unexpected reply type");
  }
  return std::move(reply.payload);
}

}  // namespace served
}  // namespace cqa
