// cqa::served -- the multi-process sharded front door.
//
//                        +----------------------------+
//   client ---frame--->  |  router (this process)     |
//   client ---frame--->  |   - fingerprint -> shard   |   socketpair
//   client ---frame--->  |   - admission / shed       | <---------> worker 0
//                        |   - disk result cache      | <---------> worker 1
//                        |   - crash containment      | <---------> worker N-1
//                        +----------------------------+    (forked processes)
//
// Server::start() forks N worker processes, each owning a full Session
// (engines + pool + EvalCache + serve::Scheduler), then serves client
// connections on a TCP or unix-domain socket. Every incoming request is
// fingerprinted with serve::request_fingerprint -- the same
// platform-stable bytes the in-process scheduler coalesces on -- and
// routed by fingerprint hash, so duplicate-heavy traffic lands on the
// same worker and coalesces *across* client connections and processes.
//
// The shed-to-certified-trivial-1/2 ladder holds end-to-end:
//
//   - Admission: a shard over its in-flight capacity (or down while
//     respawning) sheds volume requests to the last rung -- honest
//     [0, 1] bars, guard.shed = true -- and answers non-degradable
//     kinds with typed kResourceExhausted, computed at the router
//     without touching any engine.
//   - Crash containment: a worker dying on a pathological query (FM
//     blowup, OOM kill, kill -9) costs one shard. The per-shard
//     supervisor thread reaps the corpse, degrades every in-flight
//     request on that shard honestly (volume -> trivial-1/2 with
//     guard.worker_crashed = true, others -> typed error; nothing ever
//     hangs), forks a replacement, and the shard is back.
//   - Hang containment: a worker that stops making progress without
//     dying (SIGSTOP, scheduler livelock, a wedged syscall) is caught
//     by the watchdog. Workers publish a monotonic heartbeat and an
//     in-flight progress counter into a per-shard slot of a MAP_SHARED
//     page mapped before the forks; the supervisor polls it, and a
//     shard frozen past watchdog_budget_ms is escalated -- SIGTERM,
//     a timed wait, then SIGKILL -- its in-flight degraded honestly
//     (guard.worker_hung = true), and respawned. Same one-shard blast
//     radius as a crash; the flag names the escalation path.
//   - Persistence: full-fidelity answers land in a disk-backed result
//     cache keyed by the fingerprint (checksummed records, versioned
//     header, corrupt-tail tolerance), so a restarted server serves its
//     hot set without recomputing; workers additionally snapshot their
//     exact-volume EvalCache entries on clean shutdown and restore them
//     on (re)spawn.
//
// The Server object is also usable in-process (tests, benches spawn it
// directly); tools/cqa_served wraps it in a binary.

#ifndef CQA_SERVED_SERVER_H_
#define CQA_SERVED_SERVER_H_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cqa/runtime/session.h"
#include "cqa/served/disk_cache.h"
#include "cqa/served/wire.h"
#include "cqa/util/status.h"

namespace cqa {
namespace served {

struct ServedOptions {
  /// Worker processes (= shards). Each owns a Session.
  std::size_t workers = 4;
  /// Non-empty: listen on this unix-domain socket path (unlinked and
  /// rebound at start). Empty: listen on TCP.
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;  // 0 = ephemeral; see Server::port()
  /// Per-shard in-flight cap before the router sheds at admission.
  std::size_t shard_capacity = 256;
  /// Non-empty: persistent result cache file; workers also snapshot
  /// exact-volume cache entries to "<cache_path>.volumes.shard<i>".
  std::string cache_path;
  std::size_t cache_capacity = 4096;
  /// > 0 arms the hung-worker watchdog: a shard whose heartbeat
  /// freezes, or that holds in-flight requests without completing any,
  /// past this budget is killed (SIGTERM -> term_grace_ms -> SIGKILL),
  /// its in-flight resolved honestly with guard.worker_hung, and
  /// respawned. Must exceed the worst-case latency of a single request
  /// -- the watchdog cannot tell a wedged worker from a slow one. 0
  /// (default) disarms it, so long exact sweeps are never killed by a
  /// server that did not opt in.
  std::int64_t watchdog_budget_ms = 0;
  /// Supervisor poll / worker heartbeat cadence while the watchdog is
  /// armed.
  std::int64_t watchdog_interval_ms = 100;
  /// Escalation grace between SIGTERM and SIGKILL. SIGTERM cannot wake
  /// a SIGSTOPped worker (it stays pending), so SIGKILL is always the
  /// last rung.
  std::int64_t term_grace_ms = 500;
  /// Per-worker Session/Scheduler knobs. Defaults are sized for a
  /// fleet: small pools beat one oversubscribed process.
  SessionOptions session;

  ServedOptions() {
    session.threads = 2;
    session.serve_executors = 2;
  }
};

/// Router-side counters (worker-side metrics travel in stats frames).
struct ServerStats {
  std::uint64_t requests = 0;        // request frames admitted or shed
  std::uint64_t answers = 0;         // answers forwarded from workers
  std::uint64_t shed = 0;            // shed at admission (capacity/down)
  std::uint64_t crash_degraded = 0;  // in-flight degraded by a crash
  std::uint64_t respawns = 0;        // workers refleeted after death
  std::uint64_t cache_hits = 0;      // served straight from DiskCache
  std::uint64_t hung_kills = 0;      // workers escalated by the watchdog
  std::uint64_t hung_degraded = 0;   // in-flight degraded by a hang
};

class Server {
 public:
  explicit Server(ServedOptions options);
  ~Server();  // stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, forks the fleet, starts router threads. Fails (kInternal)
  /// on socket errors; the fleet is torn down on failure.
  Status start();

  /// Stops accepting, closes every connection, shuts the fleet down
  /// (workers exit on EOF and are reaped), joins all threads.
  /// Idempotent.
  void stop();

  /// Resolved TCP port (after start(), TCP mode only).
  std::uint16_t port() const { return resolved_port_; }

  std::size_t worker_count() const { return workers_.size(); }
  /// Current pid of a shard's worker (test seam for kill -9).
  pid_t worker_pid(std::size_t shard) const;
  /// The shard a request routes to (test seam: aim a kill at the shard
  /// that serves a known query).
  std::size_t shard_of(const Request& request) const;

  ServerStats stats() const;
  DiskCacheStats cache_stats() const;

  /// Connections not yet reaped (test seam: closed connections must not
  /// accumulate for the server's lifetime).
  std::size_t live_connections() const;

 private:
  struct ClientConn {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
    /// Reader thread has exited and closed fd; the acceptor's sweep may
    /// join the thread and drop the conn.
    std::atomic<bool> done{false};
    std::thread::id tid;  // set under conns_mu_ at accept
  };
  using ClientConnPtr = std::shared_ptr<ClientConn>;

  /// Rendezvous for router-internal worker queries (stats fan-out).
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Frame frame;
  };

  /// One in-flight request the router forwarded to a worker.
  struct Pending {
    ClientConnPtr conn;            // null when waiter is set
    std::shared_ptr<Waiter> waiter;
    std::uint64_t client_id = 0;
    std::size_t shard = 0;
    RequestKind kind = RequestKind::kVolume;
    std::string fingerprint;       // cache key ("" = don't cache)
    bool counted = false;          // holds a slot of the shard's capacity
    std::uint64_t generation = 0;  // worker generation that counted it
  };

  /// One shard's liveness signals, a slot of a MAP_SHARED|MAP_ANONYMOUS
  /// page mapped before the forks (armed watchdog only). The worker
  /// publishes, the supervisor reads; both sides use relaxed atomics --
  /// the watchdog needs freshness on a human timescale, not ordering.
  struct WatchSlot {
    /// Bumped by the worker's heartbeat thread every
    /// watchdog_interval_ms. Frozen = the whole process is stopped or
    /// starved (SIGSTOP, swap death).
    alignas(64) std::atomic<std::uint64_t> beat{0};
    /// Bumped per frame handled and per answer completed. Frozen while
    /// in_flight > 0 = the engines are wedged even though the heartbeat
    /// thread still runs (livelock, stuck syscall).
    std::atomic<std::uint64_t> progress{0};
  };

  /// Why a request degraded without reaching (or surviving) a worker;
  /// picks the guard flag on the honest trivial-1/2 answer.
  enum class DegradeReason { kShed, kCrashed, kHung };

  /// One shard: a forked worker process plus its supervisor state.
  struct Worker {
    mutable std::mutex mu;  // guards fd/pid/alive/generation + writes
    int fd = -1;
    pid_t pid = -1;
    bool alive = false;
    /// Bumped by the supervisor's crash sweep when it zeroes in_flight.
    /// A slow path may only decrement in_flight for a Pending entry it
    /// erased whose generation still matches, so a racing sweep+respawn
    /// never has a stale decrement charged to the fresh worker.
    std::uint64_t generation = 0;
    std::atomic<std::size_t> in_flight{0};
    std::thread supervisor;
  };

  Status bind_listener();
  Status spawn_worker(std::size_t shard);
  [[noreturn]] void worker_main(int fd, std::size_t shard);

  void accept_loop();
  void client_loop(ClientConnPtr conn);
  void supervisor_loop(std::size_t shard);
  /// Joins finished client threads and drops their closed conns, so a
  /// long-lived server with short-lived connections stays bounded.
  void reap_connections();

  void handle_request(const ClientConnPtr& conn, const Frame& frame);
  void handle_stats(const ClientConnPtr& conn, const Frame& frame);

  /// Sends a frame on a client connection (no-op once closed).
  void send_to_client(const ClientConnPtr& conn, MsgType type,
                      std::uint64_t id, const std::string& payload);
  /// Resolves one pending entry with an already-encoded answer.
  void resolve_pending(Pending&& entry, MsgType type,
                       const std::string& payload);
  /// Returns a counted entry's admission slot, unless a crash sweep
  /// already reclaimed it wholesale (generation mismatch).
  static void release_slot(Worker& w, const Pending& entry);
  /// The honest no-engine answer for a request that cannot reach (or
  /// did not survive) a worker: volume -> trivial-1/2 with the guard
  /// flag `why` names, other kinds -> typed kResourceExhausted.
  static std::string degraded_payload(RequestKind kind, DegradeReason why);
  /// Timed reap: polls waitpid(WNOHANG) for up to grace_ms, then
  /// SIGKILLs and reaps the guaranteed corpse. Never blocks unboundedly
  /// on a child that is still alive (a hung worker would wedge the
  /// supervisor -- the exact disease the watchdog exists to cure).
  static void reap_worker(pid_t pid, std::int64_t grace_ms);

  ServedOptions options_;
  std::unique_ptr<DiskCache> cache_;

  int listener_ = -1;
  std::uint16_t resolved_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Worker>> workers_;

  /// Per-shard liveness slots (armed watchdog only; else null). Mapped
  /// MAP_SHARED before the first fork so every worker and the router
  /// see the same page; unmapped in stop().
  WatchSlot* watch_ = nullptr;
  std::size_t watch_bytes_ = 0;

  std::thread acceptor_;
  mutable std::mutex conns_mu_;
  std::vector<ClientConnPtr> conns_;
  std::vector<std::thread> conn_threads_;

  std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::atomic<std::uint64_t> next_id_{1};

  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> answers_total_{0};
  std::atomic<std::uint64_t> shed_total_{0};
  std::atomic<std::uint64_t> crash_degraded_total_{0};
  std::atomic<std::uint64_t> respawn_total_{0};
  std::atomic<std::uint64_t> cache_hit_total_{0};
  std::atomic<std::uint64_t> hung_kill_total_{0};
  std::atomic<std::uint64_t> hung_degraded_total_{0};
};

}  // namespace served
}  // namespace cqa

#endif  // CQA_SERVED_SERVER_H_
