// Disk-backed persistent result cache for the cqa::served front door.
//
// Maps the collision-proof request fingerprint (serve::request_fingerprint,
// platform-stable bytes) to the encoded wire answer, so a restarted
// server keeps its hot set: the first arrival of a fingerprint after
// restart is served from disk instead of recomputed. Only full-fidelity
// answers (is_ok() and AnswerStatus::kOk) are ever stored -- degraded
// answers depend on the load and deadline weather that produced them,
// so caching them would freeze an unlucky moment forever, while
// full-fidelity answers are deterministic in the fingerprint (the
// fingerprint covers the seed, budget, and strategy).
//
// File format (all integers u64 little-endian):
//
//   header : "CQADC" u8 format_version
//   record : u64 key_len | key | u64 val_len | val | u64 checksum
//
// where checksum = FNV-1a(key || val, salt). Loading tolerates
// corruption: a bad header starts the cache empty, a record with a
// mismatched checksum or a truncated tail drops that record and
// everything after it (counted in stats().dropped_corrupt), and open()
// rewrites the file compacted -- duplicates last-win, corruption is
// gone, and the next crash loses at most the records since the last
// store. A poisoned entry can cost a recompute, never a wrong answer.
//
// Thread-safe: lookups and stores take one mutex (the store path also
// appends + flushes, so the cache is consistent after any crash point).

#ifndef CQA_SERVED_DISK_CACHE_H_
#define CQA_SERVED_DISK_CACHE_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cqa/util/status.h"

namespace cqa {
namespace served {

struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t loaded = 0;           // records restored by open()
  std::uint64_t dropped_corrupt = 0;  // records dropped by open()
  std::uint64_t rejected_full = 0;    // stores refused at capacity
  std::size_t entries = 0;
};

class DiskCache {
 public:
  /// `path` is created on first store if absent. capacity bounds the
  /// in-memory index (and, via compaction, the file).
  explicit DiskCache(std::string path, std::size_t capacity = 4096);

  /// Loads whatever survives validation and rewrites the file
  /// compacted. Always leaves the cache usable; the Status reports
  /// filesystem-level trouble (unwritable directory) for logs.
  Status open();

  std::optional<std::string> lookup(const std::string& fingerprint);

  /// Stores fingerprint -> encoded answer (last write wins) and appends
  /// the record to disk. Silently refuses at capacity.
  void store(const std::string& fingerprint, const std::string& value);

  DiskCacheStats stats() const;
  const std::string& path() const { return path_; }

 private:
  void append_record(const std::string& key, const std::string& value);

  std::string path_;
  std::size_t capacity_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> index_;
  std::ofstream out_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t loaded_ = 0;
  std::uint64_t dropped_corrupt_ = 0;
  std::uint64_t rejected_full_ = 0;
};

}  // namespace served
}  // namespace cqa

#endif  // CQA_SERVED_DISK_CACHE_H_
