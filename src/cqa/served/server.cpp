#include "cqa/served/server.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <utility>

#include "cqa/core/constraint_database.h"
#include "cqa/plan/planner.h"
#include "cqa/serve/scheduler.h"
#include "cqa/util/bincode.h"

#if defined(__SANITIZE_THREAD__)
#define CQA_SERVED_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CQA_SERVED_TSAN 1
#endif
#endif

#ifdef CQA_SERVED_TSAN
// Respawning a dead worker forks from the (multithreaded) router; TSan's
// default is to kill the child outright after a fork-from-threads. The
// child builds a fresh Session and never touches router state, so the
// standard escape hatch applies.
extern "C" const char* __tsan_default_options() {
  return "die_after_fork=0";
}
#endif

namespace cqa {
namespace served {

namespace {

constexpr std::uint64_t kShardSalt = 0x5ca1ab1e0fULL;
/// A client that stops reading (full socket buffer) must cost itself,
/// not the shard supervisor delivering its answer: writes block at most
/// this long, then the connection is dropped.
constexpr int kClientSendTimeoutSec = 5;
constexpr std::uint64_t kVolumeSnapSalt = 0x70a57ed5a17ULL;
constexpr char kVolumeMagic[] = "CQAVS";  // 5 bytes, then format version
constexpr std::uint8_t kVolumeFormatVersion = 1;
/// Clean-stop reap budget: workers get EOF, snapshot their volume cache,
/// and exit; a worker that cannot manage that in this window is SIGKILLed
/// so stop() never hangs the caller.
constexpr std::int64_t kStopReapGraceMs = 5000;

/// Closes every inherited descriptor except stdio and `keep`. Run in a
/// freshly forked worker so it cannot pin client connections, the
/// listener, or sibling worker pipes open past their owners.
void close_inherited_fds(int keep) {
  std::vector<int> fds;
  if (DIR* dir = opendir("/proc/self/fd")) {
    const int dir_fd = dirfd(dir);
    while (dirent* entry = readdir(dir)) {
      char* end = nullptr;
      const long fd = std::strtol(entry->d_name, &end, 10);
      if (end == entry->d_name || *end != '\0') continue;
      if (fd > 2 && fd != keep && fd != dir_fd) {
        fds.push_back(static_cast<int>(fd));
      }
    }
    closedir(dir);
  } else {
    for (int fd = 3; fd < 1024; ++fd) {
      if (fd != keep) fds.push_back(fd);
    }
  }
  for (int fd : fds) close(fd);
}

std::uint64_t snapshot_checksum(const std::string& key,
                                const std::string& value) {
  return bincode::fnv1a(value, bincode::fnv1a(key, kVolumeSnapSalt));
}

/// Worker-side warm start: the exact-volume side of the EvalCache
/// round-trips through "<cache_path>.volumes.shard<i>" with the same
/// checksummed-record discipline as the router's DiskCache.
void save_volume_snapshot(EvalCache& cache, const std::string& path) {
  const auto entries = cache.snapshot_volumes();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return;
  std::string buf(kVolumeMagic, 5);
  buf.push_back(static_cast<char>(kVolumeFormatVersion));
  for (const auto& [key, value] : entries) {
    const std::string text = value.to_string();
    bincode::put_str(&buf, key);
    bincode::put_str(&buf, text);
    bincode::put_u64(&buf, snapshot_checksum(key, text));
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void load_volume_snapshot(EvalCache& cache, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < 6 || bytes.compare(0, 5, kVolumeMagic) != 0 ||
      static_cast<std::uint8_t>(bytes[5]) != kVolumeFormatVersion) {
    return;
  }
  std::vector<std::pair<std::string, Rational>> entries;
  bincode::Reader body(bytes.data() + 6, bytes.size() - 6);
  while (!body.exhausted()) {
    std::string key, text;
    std::uint64_t sum = 0;
    if (!body.get_str(&key) || !body.get_str(&text) || !body.get_u64(&sum) ||
        snapshot_checksum(key, text) != sum) {
      break;  // truncated tail or bit rot: keep what validated
    }
    auto value = Rational::from_string(text);
    if (!value.is_ok()) break;
    entries.emplace_back(std::move(key), std::move(value).take());
  }
  cache.restore_volumes(entries);
}

}  // namespace

Server::Server(ServedOptions options) : options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (!options_.cache_path.empty()) {
    cache_ = std::make_unique<DiskCache>(options_.cache_path,
                                         options_.cache_capacity);
  }
}

Server::~Server() { stop(); }

Status Server::start() {
  if (running_.exchange(true)) {
    return Status::internal("server already started");
  }
  stopping_.store(false);
  if (cache_) {
    Status s = cache_->open();
    if (!s.is_ok()) {
      running_.store(false);
      return s;
    }
  }
  Status bound = bind_listener();
  if (!bound.is_ok()) {
    running_.store(false);
    return bound;
  }
  workers_.clear();
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  if (options_.watchdog_budget_ms > 0) {
    // Shared liveness page, mapped before the first fork so the
    // workers' heartbeat stores land in the supervisor's view.
    watch_bytes_ = sizeof(WatchSlot) * options_.workers;
    void* mem = mmap(nullptr, watch_bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      watch_ = nullptr;
      watch_bytes_ = 0;
      stop();
      return Status::internal("mmap for watchdog slots failed: " +
                              std::string(std::strerror(errno)));
    }
    watch_ = static_cast<WatchSlot*>(mem);
    for (std::size_t i = 0; i < options_.workers; ++i) {
      new (&watch_[i]) WatchSlot();
    }
  }
  // The initial fleet forks before any router thread exists, so even
  // sanitized builds fork from a single-threaded process here; only
  // respawns fork from a multithreaded one.
  for (std::size_t i = 0; i < options_.workers; ++i) {
    Status s = spawn_worker(i);
    if (!s.is_ok()) {
      stop();
      return s;
    }
  }
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_[i]->supervisor = std::thread(&Server::supervisor_loop, this, i);
  }
  acceptor_ = std::thread(&Server::accept_loop, this);
  return Status::ok();
}

void Server::stop() {
  if (!running_.load()) return;
  stopping_.store(true);

  // 1. Stop accepting. shutdown() wakes a blocked accept() on Linux.
  if (listener_ >= 0) shutdown(listener_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listener_ >= 0) {
    close(listener_);
    listener_ = -1;
  }

  // 2. Wake every client reader; the threads close their own fds.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      conn->open.store(false);
      // write_mu serializes with the reader's own close(): a thread
      // that already finished has set fd to -1.
      std::lock_guard<std::mutex> write_lock(conn->write_mu);
      if (conn->fd >= 0) shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(conn_threads_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }

  // 3. Shut the fleet down: EOF on the socketpair makes each worker
  // snapshot its volume cache and exit; supervisors observe stopping_.
  for (auto& wp : workers_) {
    std::lock_guard<std::mutex> lock(wp->mu);
    if (wp->fd >= 0) shutdown(wp->fd, SHUT_RDWR);
  }
  for (auto& wp : workers_) {
    if (wp->supervisor.joinable()) wp->supervisor.join();
  }
  for (auto& wp : workers_) {
    std::lock_guard<std::mutex> lock(wp->mu);
    if (wp->fd >= 0) {
      close(wp->fd);
      wp->fd = -1;
    }
    if (wp->pid > 0) {
      reap_worker(wp->pid, kStopReapGraceMs);
      wp->pid = -1;
    }
    wp->alive = false;
  }

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.clear();
  }
  if (watch_ != nullptr) {
    munmap(watch_, watch_bytes_);
    watch_ = nullptr;
    watch_bytes_ = 0;
  }
  if (!options_.unix_path.empty()) unlink(options_.unix_path.c_str());
  running_.store(false);
}

void Server::reap_worker(pid_t pid, std::int64_t grace_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms);
  for (;;) {
    const pid_t r = waitpid(pid, nullptr, WNOHANG);
    if (r == pid || (r < 0 && errno != EINTR)) return;
    if (std::chrono::steady_clock::now() >= deadline) break;
    usleep(2000);
  }
  // Out of patience. SIGKILL works on stopped and wedged processes
  // alike, so the blocking reap below is bounded in practice.
  kill(pid, SIGKILL);
  for (;;) {
    const pid_t r = waitpid(pid, nullptr, 0);
    if (r == pid || (r < 0 && errno != EINTR)) return;
  }
}

Status Server::bind_listener() {
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::invalid("unix socket path too long: " +
                             options_.unix_path);
    }
    unlink(options_.unix_path.c_str());
    listener_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener_ < 0) {
      return Status::internal("socket(AF_UNIX) failed");
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    if (bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      close(listener_);
      listener_ = -1;
      return Status::internal("bind failed: " + options_.unix_path);
    }
  } else {
    listener_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listener_ < 0) {
      return Status::internal("socket(AF_INET) failed");
    }
    int one = 1;
    setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.tcp_port);
    if (inet_pton(AF_INET, options_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      close(listener_);
      listener_ = -1;
      return Status::invalid("bad tcp_host: " + options_.tcp_host);
    }
    if (bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      close(listener_);
      listener_ = -1;
      return Status::internal("bind failed: " + options_.tcp_host + ":" +
                              std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    getsockname(listener_, reinterpret_cast<sockaddr*>(&bound), &len);
    resolved_port_ = ntohs(bound.sin_port);
  }
  if (listen(listener_, 128) != 0) {
    close(listener_);
    listener_ = -1;
    return Status::internal("listen failed");
  }
  return Status::ok();
}

Status Server::spawn_worker(std::size_t shard) {
  int sp[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) {
    return Status::internal("socketpair failed: " +
                            std::string(std::strerror(errno)));
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(sp[0]);
    close(sp[1]);
    return Status::internal("fork failed: " +
                            std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    worker_main(sp[1], shard);  // never returns
  }
  close(sp[1]);
  Worker& w = *workers_[shard];
  std::lock_guard<std::mutex> lock(w.mu);
  w.fd = sp[0];
  w.pid = pid;
  w.alive = true;
  w.in_flight.store(0);
  // A stop() racing this respawn already walked the worker table; make
  // sure the fresh fd still gets its shutdown so the supervisor exits.
  if (stopping_.load()) shutdown(w.fd, SHUT_RDWR);
  return Status::ok();
}

void Server::worker_main(int fd, std::size_t shard) {
  close_inherited_fds(fd);
  {
    ConstraintDatabase db;
    // Declared before Session: ~Scheduler joins executors and publishes
    // still-queued tickets, whose then-callbacks lock write_mu -- it
    // must outlive the session's teardown.
    std::mutex write_mu;  // read loop + executor then-callbacks share fd
    Session session(&db, options_.session);
    const std::string snapshot_path =
        options_.cache_path.empty()
            ? std::string()
            : options_.cache_path + ".volumes.shard" + std::to_string(shard);
    if (!snapshot_path.empty()) {
      load_volume_snapshot(session.cache(), snapshot_path);
    }
    // Armed watchdog: publish liveness into this shard's shared slot. A
    // dedicated thread keeps the heartbeat honest even while the main
    // thread blocks in read_frame; progress bumps ride the work itself.
    WatchSlot* slot = watch_ != nullptr ? &watch_[shard] : nullptr;
    std::atomic<bool> hb_stop{false};
    std::thread heartbeat;
    if (slot != nullptr) {
      heartbeat = std::thread(
          [slot, &hb_stop, interval = options_.watchdog_interval_ms] {
            while (!hb_stop.load(std::memory_order_relaxed)) {
              slot->beat.fetch_add(1, std::memory_order_relaxed);
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(interval));
            }
          });
    }
    for (;;) {
      Frame frame;
      if (!read_frame(fd, &frame).is_ok()) break;
      if (slot != nullptr) {
        slot->progress.fetch_add(1, std::memory_order_relaxed);
      }
      switch (frame.type) {
        case MsgType::kPing: {
          std::lock_guard<std::mutex> lock(write_mu);
          (void)write_frame(fd, MsgType::kPong, frame.id, frame.payload);
          break;
        }
        case MsgType::kStats: {
          std::string text = "pid " + std::to_string(getpid()) + "\n";
          text += "serve_queue_depth_peak_window " +
                  std::to_string(session.metrics()
                                     .gauge("serve_queue_depth")
                                     ->take_peak()) +
                  "\n";
          text += session.metrics_dump();
          std::lock_guard<std::mutex> lock(write_mu);
          (void)write_frame(fd, MsgType::kStatsReply, frame.id, text);
          break;
        }
        case MsgType::kRequest: {
          auto decoded = decode_request(frame.payload);
          if (!decoded.is_ok()) {
            const std::string payload =
                encode_answer(Result<Answer>(decoded.status()), nullptr);
            std::lock_guard<std::mutex> lock(write_mu);
            (void)write_frame(fd, MsgType::kAnswer, frame.id, payload);
            break;
          }
          Request request = std::move(decoded).take();
          if (request.kind == RequestKind::kCells) {
            const std::string payload = encode_answer(
                Result<Answer>(Status::unsupported(
                    "kCells answers are not wire-serializable; "
                    "use a local Session")),
                nullptr);
            std::lock_guard<std::mutex> lock(write_mu);
            (void)write_frame(fd, MsgType::kAnswer, frame.id, payload);
            break;
          }
          serve::Ticket ticket = session.submit(std::move(request));
          ticket.then([fd, id = frame.id, &write_mu, &db,
                       slot](const Result<Answer>& result) {
            if (slot != nullptr) {
              slot->progress.fetch_add(1, std::memory_order_relaxed);
            }
            const std::string payload = encode_answer(result, &db.vars());
            std::lock_guard<std::mutex> lock(write_mu);
            if (!write_frame(fd, MsgType::kAnswer, id, payload).is_ok()) {
              // An answer over kMaxFrameBody must still resolve the
              // router's pending slot: downgrade to a typed error that
              // always fits. On a dead pipe this write fails too, which
              // is fine -- the router has already swept the shard.
              (void)write_frame(
                  fd, MsgType::kAnswer, id,
                  encode_answer(Result<Answer>(Status::resource_exhausted(
                                    "answer exceeds wire frame bound")),
                                nullptr));
            }
          });
          break;
        }
        default:
          break;
      }
    }
    hb_stop.store(true, std::memory_order_relaxed);
    if (heartbeat.joinable()) heartbeat.join();
    if (!snapshot_path.empty()) {
      save_volume_snapshot(session.cache(), snapshot_path);
    }
    // Session teardown resolves every outstanding ticket; the callbacks
    // write into a dead pipe and fail silently, which is fine -- the
    // router has already given up on this worker.
  }
  _exit(0);
}

void Server::accept_loop() {
  for (;;) {
    const int fd = accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down by stop()
    }
    if (stopping_.load()) {
      close(fd);
      continue;
    }
    reap_connections();
    timeval tv{};
    tv.tv_sec = kClientSendTimeoutSec;
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    auto conn = std::make_shared<ClientConn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(&Server::client_loop, this, conn);
    conn->tid = conn_threads_.back().get_id();
  }
}

void Server::reap_connections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (!(*it)->done.load()) {
        ++it;
        continue;
      }
      const std::thread::id tid = (*it)->tid;
      for (auto& t : conn_threads_) {
        if (t.joinable() && t.get_id() == tid) {
          finished.push_back(std::move(t));
          break;
        }
      }
      it = conns_.erase(it);
    }
    if (!finished.empty()) {
      conn_threads_.erase(
          std::remove_if(conn_threads_.begin(), conn_threads_.end(),
                         [](const std::thread& t) { return !t.joinable(); }),
          conn_threads_.end());
    }
  }
  // done was stored as the loop's last act; join outside the lock (it
  // waits only for the thread's final return).
  for (auto& t : finished) t.join();
}

void Server::client_loop(ClientConnPtr conn) {
  for (;;) {
    Frame frame;
    if (!read_frame(conn->fd, &frame).is_ok()) break;
    switch (frame.type) {
      case MsgType::kPing:
        send_to_client(conn, MsgType::kPong, frame.id, frame.payload);
        break;
      case MsgType::kRequest:
        handle_request(conn, frame);
        break;
      case MsgType::kStats:
        handle_stats(conn, frame);
        break;
      default:
        break;  // a client sending answers is talking to itself
    }
  }
  conn->open.store(false);
  {
    // Serialize with in-flight answer writes before the fd goes away.
    std::lock_guard<std::mutex> lock(conn->write_mu);
    close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true);  // reapable; must be the loop's last act
}

void Server::handle_request(const ClientConnPtr& conn, const Frame& frame) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  auto decoded = decode_request(frame.payload);
  if (!decoded.is_ok()) {
    send_to_client(conn, MsgType::kAnswer, frame.id,
                   encode_answer(Result<Answer>(decoded.status()), nullptr));
    return;
  }
  Request request = std::move(decoded).take();
  if (request.kind == RequestKind::kCells) {
    send_to_client(
        conn, MsgType::kAnswer, frame.id,
        encode_answer(Result<Answer>(Status::unsupported(
                          "kCells answers are not wire-serializable; "
                          "use a local Session")),
                      nullptr));
    return;
  }
  Status valid = validate_request(request);
  if (!valid.is_ok()) {
    // Reject at the router: garbage must not burn a shard's capacity.
    send_to_client(conn, MsgType::kAnswer, frame.id,
                   encode_answer(Result<Answer>(std::move(valid)), nullptr));
    return;
  }

  const std::string fingerprint = serve::request_fingerprint(request);
  const std::size_t shard =
      bincode::fnv1a(fingerprint, kShardSalt) % workers_.size();

  if (cache_) {
    if (auto hit = cache_->lookup(fingerprint)) {
      cache_hit_total_.fetch_add(1, std::memory_order_relaxed);
      answers_total_.fetch_add(1, std::memory_order_relaxed);
      send_to_client(conn, MsgType::kAnswer, frame.id, *hit);
      return;
    }
  }

  Worker& w = *workers_[shard];
  std::unique_lock<std::mutex> lock(w.mu);
  if (!w.alive || w.in_flight.load() >= options_.shard_capacity) {
    lock.unlock();
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    send_to_client(conn, MsgType::kAnswer, frame.id,
                   degraded_payload(request.kind, DegradeReason::kShed));
    return;
  }
  const std::uint64_t gid = next_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> plock(pending_mu_);
    Pending p;
    p.conn = conn;
    p.client_id = frame.id;
    p.shard = shard;
    p.kind = request.kind;
    p.fingerprint = cache_ ? fingerprint : std::string();
    p.counted = true;
    p.generation = w.generation;  // w.mu still held
    pending_.emplace(gid, std::move(p));
  }
  w.in_flight.fetch_add(1);
  Status sent = write_frame(w.fd, MsgType::kRequest, gid, frame.payload);
  lock.unlock();
  if (!sent.is_ok()) {
    // The worker died between admission and write. The supervisor sweep
    // may have claimed the entry already; whoever erases it resolves it.
    Pending entry;
    bool claimed = false;
    {
      std::lock_guard<std::mutex> plock(pending_mu_);
      auto it = pending_.find(gid);
      if (it != pending_.end()) {
        entry = std::move(it->second);
        pending_.erase(it);
        claimed = true;
      }
    }
    if (claimed) {
      release_slot(w, entry);
      crash_degraded_total_.fetch_add(1, std::memory_order_relaxed);
      const std::string payload =
          degraded_payload(entry.kind, DegradeReason::kCrashed);
      resolve_pending(std::move(entry), MsgType::kAnswer, payload);
    }
  }
}

void Server::release_slot(Worker& w, const Pending& entry) {
  if (!entry.counted) return;
  std::lock_guard<std::mutex> lock(w.mu);
  // A crash sweep that already zeroed in_flight bumped the generation;
  // this entry's slot is gone and must not be charged to the respawn.
  if (w.generation == entry.generation) w.in_flight.fetch_sub(1);
}

void Server::handle_stats(const ClientConnPtr& conn, const Frame& frame) {
  std::string text;
  const ServerStats s = stats();
  text += "workers " + std::to_string(workers_.size()) + "\n";
  text += "served_requests_total " + std::to_string(s.requests) + "\n";
  text += "served_answers_total " + std::to_string(s.answers) + "\n";
  text += "served_shed_total " + std::to_string(s.shed) + "\n";
  text += "served_crash_degraded_total " + std::to_string(s.crash_degraded) +
          "\n";
  text += "served_respawn_total " + std::to_string(s.respawns) + "\n";
  text += "served_cache_hit_total " + std::to_string(s.cache_hits) + "\n";
  text += "served_hung_kill_total " + std::to_string(s.hung_kills) + "\n";
  text += "served_hung_degraded_total " + std::to_string(s.hung_degraded) +
          "\n";
  if (cache_) {
    const DiskCacheStats cs = cache_->stats();
    text += "disk_cache_entries " + std::to_string(cs.entries) + "\n";
    text += "disk_cache_stores " + std::to_string(cs.stores) + "\n";
    text += "disk_cache_loaded " + std::to_string(cs.loaded) + "\n";
    text += "disk_cache_dropped_corrupt " +
            std::to_string(cs.dropped_corrupt) + "\n";
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    const std::string tag = "shard " + std::to_string(i) + " ";
    const std::uint64_t gid =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    auto waiter = std::make_shared<Waiter>();
    {
      std::unique_lock<std::mutex> lock(w.mu);
      if (!w.alive) {
        text += tag + "down\n";
        continue;
      }
      text += tag + "pid " + std::to_string(w.pid) + "\n";
      text += tag + "in_flight " + std::to_string(w.in_flight.load()) + "\n";
      {
        std::lock_guard<std::mutex> plock(pending_mu_);
        Pending p;
        p.waiter = waiter;
        p.shard = i;
        pending_.emplace(gid, std::move(p));
      }
      Status sent = write_frame(w.fd, MsgType::kStats, gid, "");
      if (!sent.is_ok()) {
        std::lock_guard<std::mutex> plock(pending_mu_);
        pending_.erase(gid);
        text += tag + "unreachable\n";
        continue;
      }
    }
    std::unique_lock<std::mutex> wlock(waiter->mu);
    const bool replied = waiter->cv.wait_for(
        wlock, std::chrono::seconds(2), [&] { return waiter->done; });
    if (!replied) {
      std::lock_guard<std::mutex> plock(pending_mu_);
      pending_.erase(gid);  // late replies find nothing; that is fine
      text += tag + "stats timeout\n";
      continue;
    }
    text += waiter->frame.payload;
  }
  send_to_client(conn, MsgType::kStatsReply, frame.id, text);
}

void Server::supervisor_loop(std::size_t shard) {
  Worker& w = *workers_[shard];
  const bool armed = watch_ != nullptr && options_.watchdog_budget_ms > 0;
  const auto budget = std::chrono::milliseconds(options_.watchdog_budget_ms);
  for (;;) {
    int fd = -1;
    pid_t pid = -1;
    {
      std::lock_guard<std::mutex> lock(w.mu);
      fd = w.fd;
      pid = w.pid;
    }
    // Wedge detection baselines, reset per worker incarnation. The
    // heartbeat and progress counters are monotonic across respawns, so
    // only deltas matter.
    std::uint64_t last_beat = 0, last_progress = 0;
    auto beat_at = std::chrono::steady_clock::now();
    auto progress_at = beat_at;
    if (armed) {
      last_beat = watch_[shard].beat.load(std::memory_order_relaxed);
      last_progress = watch_[shard].progress.load(std::memory_order_relaxed);
    }
    bool hung = false;
    for (;;) {
      if (armed) {
        // Poll instead of blocking in read_frame: the supervisor must
        // keep observing the liveness slot while the pipe is silent.
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int r =
            poll(&pfd, 1, static_cast<int>(options_.watchdog_interval_ms));
        if (r < 0) {
          if (errno == EINTR) continue;
          break;
        }
        const auto now = std::chrono::steady_clock::now();
        const std::uint64_t beat =
            watch_[shard].beat.load(std::memory_order_relaxed);
        const std::uint64_t progress =
            watch_[shard].progress.load(std::memory_order_relaxed);
        if (beat != last_beat) {
          last_beat = beat;
          beat_at = now;
        }
        if (progress != last_progress ||
            w.in_flight.load(std::memory_order_relaxed) == 0) {
          // Idle shards are never wedged: progress freshness is
          // measured from the moment the shard became busy.
          last_progress = progress;
          progress_at = now;
        }
        if (now - beat_at >= budget || now - progress_at >= budget) {
          hung = true;
          break;
        }
        if (r == 0) continue;  // silence, but alive: keep watching
      }
      Frame frame;
      // Armed: poll said readable, so bound the read by the watchdog
      // budget -- a worker stopped mid-frame must wedge the supervisor
      // no longer than any other hang.
      Status got = read_frame(fd, &frame,
                              armed ? options_.watchdog_budget_ms
                                    : std::int64_t{-1});
      if (!got.is_ok()) {
        hung = got.code() == StatusCode::kDeadlineExceeded;
        break;
      }
      Pending entry;
      {
        std::lock_guard<std::mutex> plock(pending_mu_);
        auto it = pending_.find(frame.id);
        if (it == pending_.end()) continue;  // stats timeout raced us
        entry = std::move(it->second);
        pending_.erase(it);
      }
      release_slot(w, entry);
      if (frame.type == MsgType::kAnswer) {
        answers_total_.fetch_add(1, std::memory_order_relaxed);
        if (cache_ && !entry.fingerprint.empty() &&
            answer_is_cacheable(frame.payload)) {
          cache_->store(entry.fingerprint, frame.payload);
        }
      }
      resolve_pending(std::move(entry), frame.type, frame.payload);
    }
    if (stopping_.load()) return;

    // The worker died mid-stream (kill -9, OOM, engine abort) or the
    // watchdog declared it wedged. The blast radius is this shard and
    // nothing else: kill if needed, reap the corpse, resolve its
    // in-flight honestly, refleet.
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.alive = false;
      if (w.fd >= 0) {
        close(w.fd);
        w.fd = -1;
      }
      // Reclaim the whole shard's capacity and invalidate every counted
      // Pending of the old worker in one step: slow paths that still
      // hold such an entry see the generation mismatch in release_slot
      // and leave the fresh worker's counter alone.
      ++w.generation;
      w.in_flight.store(0);
    }
    if (pid > 0) {
      if (hung) {
        // Escalate: SIGTERM first so a merely-slow worker can exit
        // cleanly; reap_worker SIGKILLs after the grace (the only rung
        // that works on a SIGSTOPped process).
        hung_kill_total_.fetch_add(1, std::memory_order_relaxed);
        kill(pid, SIGTERM);
      }
      reap_worker(pid, options_.term_grace_ms);
    }
    std::vector<Pending> orphans;
    {
      std::lock_guard<std::mutex> plock(pending_mu_);
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.shard == shard) {
          orphans.push_back(std::move(it->second));
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& entry : orphans) {
      if (entry.waiter) {
        resolve_pending(std::move(entry), MsgType::kStatsReply,
                        "worker down\n");
        continue;
      }
      if (hung) {
        hung_degraded_total_.fetch_add(1, std::memory_order_relaxed);
      } else {
        crash_degraded_total_.fetch_add(1, std::memory_order_relaxed);
      }
      const std::string payload = degraded_payload(
          entry.kind, hung ? DegradeReason::kHung : DegradeReason::kCrashed);
      resolve_pending(std::move(entry), MsgType::kAnswer, payload);
    }
    if (stopping_.load()) return;
    if (!spawn_worker(shard).is_ok()) {
      // Could not refleet (fork pressure). The shard stays down and new
      // arrivals shed at admission; nothing hangs.
      return;
    }
    respawn_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::send_to_client(const ClientConnPtr& conn, MsgType type,
                            std::uint64_t id, const std::string& payload) {
  if (!conn || !conn->open.load()) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open.load() || conn->fd < 0) return;
  if (!write_frame(conn->fd, type, id, payload).is_ok()) {
    // Write failed or timed out (SO_SNDTIMEO): drop the connection.
    // shutdown() wakes the reader thread so it closes the fd and the
    // acceptor's sweep reaps it; later sends no-op on open == false.
    conn->open.store(false);
    shutdown(conn->fd, SHUT_RDWR);
  }
}

void Server::resolve_pending(Pending&& entry, MsgType type,
                             const std::string& payload) {
  if (entry.waiter) {
    std::lock_guard<std::mutex> lock(entry.waiter->mu);
    if (!entry.waiter->done) {
      entry.waiter->frame.type = type;
      entry.waiter->frame.payload = payload;
      entry.waiter->done = true;
      entry.waiter->cv.notify_all();
    }
    return;
  }
  send_to_client(entry.conn, type, entry.client_id, payload);
}

std::string Server::degraded_payload(RequestKind kind, DegradeReason why) {
  if (kind == RequestKind::kVolume) {
    Answer a;
    a.kind = RequestKind::kVolume;
    a.status = AnswerStatus::kDegraded;
    a.volume = trivial_half_volume(true);
    a.guard.rung = guard::Rung::kTrivialHalf;
    a.guard.shed = why == DegradeReason::kShed;
    a.guard.worker_crashed = why == DegradeReason::kCrashed;
    a.guard.worker_hung = why == DegradeReason::kHung;
    return encode_answer(Result<Answer>(std::move(a)), nullptr);
  }
  const char* message = "shard at capacity; request shed at admission";
  if (why == DegradeReason::kCrashed) {
    message = "shard worker died mid-request; safe to retry";
  } else if (why == DegradeReason::kHung) {
    message = "shard worker hung mid-request and was killed; safe to retry";
  }
  return encode_answer(
      Result<Answer>(Status::resource_exhausted(message)), nullptr);
}

pid_t Server::worker_pid(std::size_t shard) const {
  if (shard >= workers_.size()) return -1;
  std::lock_guard<std::mutex> lock(workers_[shard]->mu);
  return workers_[shard]->pid;
}

std::size_t Server::shard_of(const Request& request) const {
  const std::size_t n = workers_.empty() ? options_.workers : workers_.size();
  return bincode::fnv1a(serve::request_fingerprint(request), kShardSalt) % n;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requests = requests_total_.load(std::memory_order_relaxed);
  s.answers = answers_total_.load(std::memory_order_relaxed);
  s.shed = shed_total_.load(std::memory_order_relaxed);
  s.crash_degraded = crash_degraded_total_.load(std::memory_order_relaxed);
  s.respawns = respawn_total_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hit_total_.load(std::memory_order_relaxed);
  s.hung_kills = hung_kill_total_.load(std::memory_order_relaxed);
  s.hung_degraded = hung_degraded_total_.load(std::memory_order_relaxed);
  return s;
}

DiskCacheStats Server::cache_stats() const {
  return cache_ ? cache_->stats() : DiskCacheStats{};
}

std::size_t Server::live_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

}  // namespace served
}  // namespace cqa
