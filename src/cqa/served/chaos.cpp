#include "cqa/served/chaos.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace cqa {
namespace served {

namespace {

using guard::FaultSite;

int dial(const std::string& unix_path, const std::string& host,
         std::uint16_t port) {
  if (!unix_path.empty()) {
    sockaddr_un addr{};
    if (unix_path.size() >= sizeof(addr.sun_path)) return -1;
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, unix_path.c_str(), unix_path.size() + 1);
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      close(fd);
      return -1;
    }
    return fd;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosOptions options)
    : options_(std::move(options)), injector_(options_.plan) {}

ChaosProxy::~ChaosProxy() { stop(); }

Status ChaosProxy::start() {
  if (running_.exchange(true)) {
    return Status::internal("chaos proxy already started");
  }
  stopping_.store(false);
  if (!options_.listen_unix.empty()) {
    sockaddr_un addr{};
    if (options_.listen_unix.size() >= sizeof(addr.sun_path)) {
      running_.store(false);
      return Status::invalid("unix socket path too long: " +
                             options_.listen_unix);
    }
    unlink(options_.listen_unix.c_str());
    listener_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener_ < 0) {
      running_.store(false);
      return Status::internal("socket(AF_UNIX) failed");
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.listen_unix.c_str(),
                options_.listen_unix.size() + 1);
    if (bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      close(listener_);
      listener_ = -1;
      running_.store(false);
      return Status::internal("bind failed: " + options_.listen_unix);
    }
  } else {
    listener_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listener_ < 0) {
      running_.store(false);
      return Status::internal("socket(AF_INET) failed");
    }
    int one = 1;
    setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.listen_port);
    if (inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) !=
        1) {
      close(listener_);
      listener_ = -1;
      running_.store(false);
      return Status::invalid("bad listen_host: " + options_.listen_host);
    }
    if (bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      close(listener_);
      listener_ = -1;
      running_.store(false);
      return Status::internal("bind failed: " + options_.listen_host + ":" +
                              std::to_string(options_.listen_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    getsockname(listener_, reinterpret_cast<sockaddr*>(&bound), &len);
    resolved_port_ = ntohs(bound.sin_port);
  }
  if (listen(listener_, 64) != 0) {
    close(listener_);
    listener_ = -1;
    running_.store(false);
    return Status::internal("listen failed");
  }
  acceptor_ = std::thread(&ChaosProxy::accept_loop, this);
  return Status::ok();
}

void ChaosProxy::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  if (listener_ >= 0) shutdown(listener_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listener_ >= 0) {
    close(listener_);
    listener_ = -1;
  }
  reap_conns(/*all=*/true);
  if (!options_.listen_unix.empty()) unlink(options_.listen_unix.c_str());
  running_.store(false);
}

void ChaosProxy::accept_loop() {
  for (;;) {
    const int fd = accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down by stop()
    }
    if (stopping_.load()) {
      close(fd);
      continue;
    }
    reap_conns(/*all=*/false);
    connections_.fetch_add(1, std::memory_order_relaxed);
    if (injector_.should_fire(FaultSite::kWireBlackhole)) {
      // The host answers the SYN and then swallows everything: keep the
      // fd open, never dial upstream, never forward a byte. The
      // client's deadlines are what make this survivable.
      blackholes_.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_shared<Conn>();
      conn->client_fd = fd;
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
      continue;
    }
    const int up_fd = dial(options_.upstream_unix, options_.upstream_host,
                           options_.upstream_port);
    if (up_fd < 0) {
      close(fd);
      continue;  // upstream down: the client sees a clean EOF
    }
    auto conn = std::make_shared<Conn>();
    conn->client_fd = fd;
    conn->upstream_fd = up_fd;
    conn->up = std::thread(&ChaosProxy::pump, this, conn, fd, up_fd);
    conn->down = std::thread(&ChaosProxy::pump, this, conn, up_fd, fd);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void ChaosProxy::sever(Conn& conn) {
  // Both directions die together: a proxy host crash does not leave one
  // half-duplex side limping.
  if (conn.client_fd >= 0) shutdown(conn.client_fd, SHUT_RDWR);
  if (conn.upstream_fd >= 0) shutdown(conn.upstream_fd, SHUT_RDWR);
  conn.dead.store(true);
}

void ChaosProxy::pump(std::shared_ptr<Conn> conn, int src, int dst) {
  std::string buf(options_.chunk_bytes, '\0');
  std::uint64_t chunk_counter = 0;
  for (;;) {
    const ssize_t n = recv(src, buf.data(), buf.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF or error: propagate the close downstream
    }
    ++chunk_counter;
    chunks_.fetch_add(1, std::memory_order_relaxed);
    std::size_t len = static_cast<std::size_t>(n);
    if (injector_.should_fire(FaultSite::kWireDisconnect)) {
      disconnects_.fetch_add(1, std::memory_order_relaxed);
      sever(*conn);
      break;
    }
    if (injector_.should_fire(FaultSite::kWireTornFrame)) {
      // Forward a prefix so the receiver is left mid-frame, then die.
      torn_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t cut = len / 2;
      if (cut > 0) (void)send_all(dst, buf.data(), cut);
      sever(*conn);
      break;
    }
    if (injector_.should_fire(FaultSite::kWireBitFlip)) {
      bit_flips_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t h =
          guard::fault_mix(options_.plan.seed ^ chunk_counter);
      buf[h % len] ^= static_cast<char>(1u << ((h >> 16) % 8));
    }
    if (injector_.should_fire(FaultSite::kWireStalledWrite)) {
      stalled_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.stall_ms));
    }
    if (!send_all(dst, buf.data(), len)) break;
  }
  // This direction is done; drag the other one down so no half-open
  // connection lingers (the peer sees EOF, not a hang).
  sever(*conn);
}

void ChaosProxy::reap_conns(bool all) {
  std::vector<std::shared_ptr<Conn>> victims;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->dead.load()) {
        victims.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : victims) {
    sever(*conn);
    if (conn->up.joinable()) conn->up.join();
    if (conn->down.joinable()) conn->down.join();
    if (conn->client_fd >= 0) close(conn->client_fd);
    if (conn->upstream_fd >= 0) close(conn->upstream_fd);
  }
}

ChaosStats ChaosProxy::stats() const {
  ChaosStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.torn = torn_.load(std::memory_order_relaxed);
  s.stalled = stalled_.load(std::memory_order_relaxed);
  s.disconnects = disconnects_.load(std::memory_order_relaxed);
  s.bit_flips = bit_flips_.load(std::memory_order_relaxed);
  s.blackholes = blackholes_.load(std::memory_order_relaxed);
  return s;
}

Status ChaosSocket::send(const std::string& bytes) {
  ++counter_;
  if (injector_ != nullptr &&
      injector_->should_fire(FaultSite::kWireDisconnect)) {
    shutdown(fd_, SHUT_RDWR);
    return Status::internal("chaos: disconnected");
  }
  std::string out = bytes;
  if (injector_ != nullptr &&
      injector_->should_fire(FaultSite::kWireBitFlip) && !out.empty()) {
    const std::uint64_t h =
        guard::fault_mix(injector_->plan().seed ^ counter_);
    out[h % out.size()] ^= static_cast<char>(1u << ((h >> 16) % 8));
  }
  if (injector_ != nullptr &&
      injector_->should_fire(FaultSite::kWireTornFrame)) {
    const std::size_t cut = out.size() / 2;
    if (cut > 0 && !send_all(fd_, out.data(), cut)) {
      return Status::internal("chaos: send failed");
    }
    shutdown(fd_, SHUT_RDWR);
    return Status::internal("chaos: torn frame");
  }
  if (!send_all(fd_, out.data(), out.size())) {
    return Status::internal("chaos: send failed");
  }
  return Status::ok();
}

}  // namespace served
}  // namespace cqa
