#include "cqa/serve/scheduler.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <utility>

#include "cqa/runtime/eval_cache.h"
#include "cqa/runtime/session.h"
#include "cqa/util/bincode.h"

namespace cqa {
namespace serve {

namespace {

std::size_t lane_of(const Request& request) {
  int p = static_cast<int>(request.priority);
  if (p < 0 || p >= kNumPriorities) p = static_cast<int>(Priority::kNormal);
  return static_cast<std::size_t>(p);
}

}  // namespace

Scheduler::Scheduler(Session* session, const SchedulerOptions& options)
    : session_(session), options_(options) {
  MetricsRegistry& m = session_->metrics();
  queue_depth_ = m.gauge("serve_queue_depth");
  submitted_ = m.counter("serve_submitted_total");
  coalesced_ = m.counter("serve_coalesced_total");
  batched_ = m.counter("serve_mc_batched_total");
  shed_ = m.counter("serve_shed_total");
  wait_ns_ = m.histogram("serve_wait_ns");
  const std::size_t n = std::max<std::size_t>(1, options_.executors);
  executors_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : executors_) t.join();
  // Executors are gone: whatever is still queued resolves now, so no
  // Ticket::wait() can outlive the scheduler blocked.
  for (auto& lane : lanes_) {
    for (Job& job : lane) {
      publish(job.state, Status::cancelled("scheduler shut down"));
      queue_depth_->sub();
    }
    lane.clear();
  }
  queued_ = 0;
}

std::string request_fingerprint(const Request& request) {
  using namespace bincode;
  std::string fp;
  fp.reserve(128 + request.query.size());
  // Format version: bump when an answer-affecting field is added so a
  // disk cache written by an older build can never alias a new shape.
  put_u8(&fp, 1);
  put_u8(&fp, static_cast<std::uint8_t>(request.kind));
  put_str(&fp, request.query);
  put_u64(&fp, request.output_vars.size());
  for (const auto& v : request.output_vars) put_str(&fp, v);
  put_f64(&fp, request.budget.epsilon);
  put_f64(&fp, request.budget.delta);
  put_i64(&fp, request.budget.deadline_ms);
  // Quotas degrade answers when they trip, so they are answer-affecting.
  put_u64(&fp, request.budget.quota.max_qe_atoms);
  put_u64(&fp, request.budget.quota.max_fm_rows);
  put_u64(&fp, request.budget.quota.max_sweep_sections);
  put_u64(&fp, request.budget.quota.max_bigint_bits);
  put_u64(&fp, request.budget.quota.max_resident_bytes);
  put_u64(&fp, request.seed);
  put_u8(&fp, request.strategy
                  ? static_cast<std::uint8_t>(*request.strategy)
                  : std::uint8_t{0xff});
  put_u8(&fp, request.vc_dim ? 1 : 0);
  put_f64(&fp, request.vc_dim ? *request.vc_dim : 0.0);
  put_u64(&fp, request.max_mc_samples);
  put_u8(&fp, static_cast<std::uint8_t>(request.aggregate_fn));
  put_u64(&fp, request.bindings.size());
  for (const auto& [name, value] : request.bindings) {
    put_str(&fp, name);
    put_str(&fp, value.to_string());
  }
  return fp;
}

// The coalescing fingerprint: the stable encoding above -- identical
// across builds and processes, so the served shard-router hashing it
// coalesces duplicates *across* workers too. Equal deadline_ms is
// required for soundness -- the leader armed its (absolute) deadline no
// later than any follower's, so the leader's answer satisfies every
// follower's budget. Requests with caller-owned cancel tokens or
// bindings are never coalesced (distinct cancellation identity).
std::string Scheduler::fingerprint_of(const Request& request) {
  if (request.cancel != nullptr || !request.bindings.empty()) return "";
  return request_fingerprint(request);
}

bool Scheduler::mc_batchable(const Request& a, const Request& b) {
  return a.kind == RequestKind::kVolume && b.kind == RequestKind::kVolume &&
         a.strategy && b.strategy &&
         *a.strategy == VolumeStrategy::kMonteCarlo &&
         *b.strategy == VolumeStrategy::kMonteCarlo &&
         a.query == b.query && a.output_vars == b.output_vars &&
         a.bindings.empty() && b.bindings.empty();
}

Ticket Scheduler::submit(Request request) {
  auto state = std::make_shared<TicketState>();
  Ticket ticket(state);

  if (Status v = validate_request(request); !v.is_ok()) {
    publish(state, std::move(v));
    return ticket;
  }
  submitted_->inc();

  // Arm the deadline now: queue wait is part of the caller's latency
  // budget. A caller-owned token that is already armed stays as-is.
  state->external_cancel = request.cancel;
  if (request.budget.has_deadline()) {
    CancelToken* t =
        request.cancel != nullptr ? request.cancel : &state->cancel;
    if (!t->has_deadline()) {
      t->set_deadline_after_ms(request.budget.deadline_ms);
    }
  }

  Job job;
  job.state = state;
  job.enqueued_at = Clock::now();
  job.has_deadline = request.budget.has_deadline();
  if (job.has_deadline) {
    job.deadline_at = job.enqueued_at + std::chrono::milliseconds(
                                            request.budget.deadline_ms);
  }
  job.fingerprint = fingerprint_of(request);
  const std::size_t lane = lane_of(request);
  const RequestKind kind = request.kind;
  job.request = std::move(request);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      publish(state, Status::cancelled("scheduler shut down"));
      return ticket;
    }
    if (queued_ >= options_.queue_capacity) {
      // Load shed. Volume requests still own a sound answer -- the last
      // rung of the degradation ladder, honest [0, 1] bars -- computed
      // right here without touching any engine. Kinds the ladder cannot
      // serve get the typed error.
      shed_->inc();
      if (kind == RequestKind::kVolume) {
        Answer a;
        a.kind = RequestKind::kVolume;
        a.status = AnswerStatus::kDegraded;
        a.volume = trivial_half_volume(true);
        a.guard.rung = guard::Rung::kTrivialHalf;
        a.guard.shed = true;
        publish(state, std::move(a));
      } else {
        publish(state, Status::resource_exhausted(
                           "serve queue over capacity"));
      }
      return ticket;
    }
    lanes_[lane].push_back(std::move(job));
    ++queued_;
    queue_depth_->add();
  }
  work_cv_.notify_one();
  return ticket;
}

void Scheduler::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

std::size_t Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

bool Scheduler::lanes_empty() const { return queued_ == 0; }

// Highest-priority lane first, FIFO within a lane -- unless some queued
// request is within promote_within_ms of its deadline, in which case
// the nearest-deadline one dispatches next regardless of lane.
Scheduler::Job Scheduler::pop_head() {
  const auto now = Clock::now();
  const auto window = std::chrono::milliseconds(options_.promote_within_ms);
  std::deque<Job>* urgent_lane = nullptr;
  std::size_t urgent_idx = 0;
  Clock::time_point urgent_deadline = Clock::time_point::max();
  for (auto& lane : lanes_) {
    for (std::size_t i = 0; i < lane.size(); ++i) {
      const Job& j = lane[i];
      if (!j.has_deadline) continue;
      if (j.deadline_at - now <= window && j.deadline_at < urgent_deadline) {
        urgent_lane = &lane;
        urgent_idx = i;
        urgent_deadline = j.deadline_at;
      }
    }
  }
  std::deque<Job>* lane = urgent_lane;
  std::size_t idx = urgent_idx;
  if (lane == nullptr) {
    for (auto& l : lanes_) {
      if (!l.empty()) {
        lane = &l;
        idx = 0;
        break;
      }
    }
  }
  Job head = std::move((*lane)[idx]);
  lane->erase(lane->begin() + static_cast<std::ptrdiff_t>(idx));
  --queued_;
  queue_depth_->sub();
  return head;
}

// Pulls everything that can ride with `head` out of the lanes: exact
// duplicates of any group member become followers of that member, and
// (for a forced-Monte-Carlo head) compatible MC requests become
// additional batch members up to max_mc_batch.
std::vector<Scheduler::Exec> Scheduler::collect_group(Job head) {
  std::vector<Exec> group;
  std::unordered_map<std::string, std::size_t> by_fp;
  const bool batching =
      head.request.kind == RequestKind::kVolume && head.request.strategy &&
      *head.request.strategy == VolumeStrategy::kMonteCarlo;
  if (!head.fingerprint.empty()) by_fp.emplace(head.fingerprint, 0);
  group.push_back(Exec{std::move(head), {}});

  for (auto& lane : lanes_) {
    for (auto it = lane.begin(); it != lane.end();) {
      bool taken = false;
      if (!it->fingerprint.empty()) {
        auto dup = by_fp.find(it->fingerprint);
        if (dup != by_fp.end()) {
          coalesced_->inc();
          group[dup->second].duplicates.push_back(std::move(*it));
          taken = true;
        }
      }
      if (!taken && batching && group.size() < options_.max_mc_batch &&
          mc_batchable(group[0].job.request, it->request)) {
        if (!it->fingerprint.empty()) {
          by_fp.emplace(it->fingerprint, group.size());
        }
        batched_->inc();
        group.push_back(Exec{std::move(*it), {}});
        taken = true;
      }
      if (taken) {
        it = lane.erase(it);
        --queued_;
        queue_depth_->sub();
      } else {
        ++it;
      }
    }
  }
  return group;
}

void Scheduler::executor_loop() {
  for (;;) {
    std::vector<Exec> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (!paused_ && !lanes_empty());
      });
      if (stop_) return;
      group = collect_group(pop_head());
    }
    execute(std::move(group));
  }
}

Result<Answer> Scheduler::run_job(Job& job) {
  if (job.state->cancel_requested.load(std::memory_order_acquire)) {
    return Status::cancelled("request cancelled before execution");
  }
  Request request = std::move(job.request);
  if (request.cancel == nullptr) request.cancel = &job.state->cancel;
  // Bind the token for FlightTable followers: if this request blocks
  // behind another executor's in-flight computation, its own cancel /
  // deadline can still wake it.
  ServeTokenScope token_scope(request.cancel);
  return session_->run(request);
}

void Scheduler::execute(std::vector<Exec> group) {
  const auto now = Clock::now();
  auto observe_wait = [&](const Job& j) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        now - j.enqueued_at)
                        .count();
    wait_ns_->observe_ns(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
  };
  for (const Exec& e : group) {
    observe_wait(e.job);
    for (const Job& d : e.duplicates) observe_wait(d);
  }

  // Single-flight participation for everything this executor runs: a
  // leader that errors out has its flights abandoned on scope exit.
  ServeFlightScope flight_scope(&session_->cache());

  if (group.size() == 1) {
    Exec& e = group[0];
    Result<Answer> r = run_job(e.job);
    for (const Job& d : e.duplicates) publish(d.state, r);
    publish(e.job.state, std::move(r));
    return;
  }

  // Fused MC batch. Members cancelled while queued drop out first.
  std::vector<Exec> live;
  live.reserve(group.size());
  for (Exec& e : group) {
    if (e.job.state->cancel_requested.load(std::memory_order_acquire)) {
      Result<Answer> r{Status::cancelled("request cancelled before execution")};
      for (const Job& d : e.duplicates) publish(d.state, r);
      publish(e.job.state, std::move(r));
    } else {
      live.push_back(std::move(e));
    }
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    Exec& e = live[0];
    Result<Answer> r = run_job(e.job);
    for (const Job& d : e.duplicates) publish(d.state, r);
    publish(e.job.state, std::move(r));
    return;
  }

  std::vector<const Request*> requests;
  std::vector<CancelToken*> tokens;
  requests.reserve(live.size());
  tokens.reserve(live.size());
  for (Exec& e : live) {
    requests.push_back(&e.job.request);
    tokens.push_back(e.job.request.cancel != nullptr
                         ? e.job.request.cancel
                         : &e.job.state->cancel);
  }
  std::vector<Result<Answer>> results =
      session_->run_mc_batch(requests, tokens);
  for (std::size_t i = 0; i < live.size(); ++i) {
    for (const Job& d : live[i].duplicates) publish(d.state, results[i]);
    publish(live[i].job.state, std::move(results[i]));
  }
}

void Scheduler::publish(const std::shared_ptr<TicketState>& state,
                        Result<Answer> result) {
  std::function<void(const Result<Answer>&)> on_ready;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->ready) return;
    state->result = std::move(result);
    state->ready = true;
    on_ready = std::move(state->on_ready);
    state->on_ready = nullptr;
  }
  state->cv.notify_all();
  // Outside the lock: `result` is immutable once ready, and a callback
  // that re-enters the ticket (wait/try_get) must not deadlock.
  if (on_ready) on_ready(state->result);
}

}  // namespace serve
}  // namespace cqa
