#include "cqa/serve/ticket.h"

namespace cqa {
namespace serve {

Result<Answer> Ticket::wait() {
  if (!state_) return Status::invalid("wait() on an empty Ticket");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->ready; });
  return state_->result;
}

std::optional<Result<Answer>> Ticket::try_get() {
  if (!state_) {
    return std::optional<Result<Answer>>(
        Status::invalid("try_get() on an empty Ticket"));
  }
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->ready) return std::nullopt;
  return state_->result;
}

void Ticket::then(std::function<void(const Result<Answer>&)> fn) {
  if (!state_ || !fn) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  if (state_->ready) {
    // Already resolved (validation failure, shed at admission, or a
    // fast executor): run inline. `result` is immutable once ready, so
    // reading it outside the lock is safe.
    lock.unlock();
    fn(state_->result);
    return;
  }
  state_->on_ready = std::move(fn);
}

void Ticket::cancel() {
  if (!state_) return;
  state_->cancel_requested.store(true, std::memory_order_release);
  state_->cancel.cancel();
  if (state_->external_cancel != nullptr) state_->external_cancel->cancel();
}

}  // namespace serve
}  // namespace cqa
