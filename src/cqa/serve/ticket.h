// serve::Ticket -- the caller's handle to an asynchronously submitted
// request.
//
// Session::submit(Request) enqueues the request with the Scheduler and
// returns a Ticket immediately. The Ticket resolves exactly once, to a
// Result<Answer>:
//
//   Ticket t = session.submit(std::move(req));
//   ...                       // do other work
//   Result<Answer> a = t.wait();            // blocks until resolved
//
//   if (auto r = t.try_get()) { ... }       // non-blocking poll
//
//   t.cancel();  // queued -> resolves kCancelled without running;
//                // executing -> trips the request's CancelToken, so it
//                // degrades or errors through the normal ladder.
//
// Tickets are cheap shared handles (copying one shares the same
// pending answer) and outlive the Scheduler safely: shutdown resolves
// every unfinished ticket, so wait() can never block forever.

#ifndef CQA_SERVE_TICKET_H_
#define CQA_SERVE_TICKET_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "cqa/runtime/request.h"
#include "cqa/util/cancellation.h"
#include "cqa/util/status.h"

namespace cqa {
namespace serve {

class Scheduler;

/// Shared slot a Ticket and the Scheduler communicate through. The
/// scheduler publishes exactly once; waiters block on the condition
/// variable. `cancel` is the token execution polls (armed with the
/// request deadline at submit time, so queue wait counts against it).
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Result<Answer> result{Status::internal("pending")};

  CancelToken cancel;
  /// Caller-supplied Request.cancel, if any: Ticket::cancel() trips it
  /// too, because execution polls it instead of `cancel` then.
  CancelToken* external_cancel = nullptr;
  /// Set by Ticket::cancel(); a still-queued request resolves
  /// kCancelled without running.
  std::atomic<bool> cancel_requested{false};
  /// Optional completion callback (Ticket::then). Invoked exactly once,
  /// after `result` is published, outside the state lock.
  std::function<void(const Result<Answer>&)> on_ready;
};

class Ticket {
 public:
  Ticket() = default;

  /// False for a default-constructed (empty) ticket.
  bool valid() const { return state_ != nullptr; }

  /// Blocks until the scheduler publishes, then returns the answer.
  /// Calling wait() (or try_get()) again returns the same answer.
  Result<Answer> wait();

  /// Non-blocking: the answer once published, nullopt while pending.
  std::optional<Result<Answer>> try_get();

  /// Requests cancellation. Queued requests resolve Status::cancelled
  /// without running; an executing request's token trips, and it
  /// resolves to whatever the degradation ladder produces. Either way
  /// the ticket still resolves -- no waiter is ever stranded.
  void cancel();

  /// Registers a completion callback, invoked exactly once with the
  /// published answer: immediately (on the calling thread) if the
  /// ticket already resolved, otherwise on the scheduler thread that
  /// publishes it. At most one callback per ticket (the last then()
  /// wins while unresolved); the callback must not block the executor.
  /// This is how cqa::served workers stream answers back without one
  /// blocked wait() thread per in-flight request.
  void then(std::function<void(const Result<Answer>&)> fn);

 private:
  friend class Scheduler;
  explicit Ticket(std::shared_ptr<TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<TicketState> state_;
};

}  // namespace serve
}  // namespace cqa

#endif  // CQA_SERVE_TICKET_H_
