// serve::Ticket -- the caller's handle to an asynchronously submitted
// request.
//
// Session::submit(Request) enqueues the request with the Scheduler and
// returns a Ticket immediately. The Ticket resolves exactly once, to a
// Result<Answer>:
//
//   Ticket t = session.submit(std::move(req));
//   ...                       // do other work
//   Result<Answer> a = t.wait();            // blocks until resolved
//
//   if (auto r = t.try_get()) { ... }       // non-blocking poll
//
//   t.cancel();  // queued -> resolves kCancelled without running;
//                // executing -> trips the request's CancelToken, so it
//                // degrades or errors through the normal ladder.
//
// Tickets are cheap shared handles (copying one shares the same
// pending answer) and outlive the Scheduler safely: shutdown resolves
// every unfinished ticket, so wait() can never block forever.

#ifndef CQA_SERVE_TICKET_H_
#define CQA_SERVE_TICKET_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>

#include "cqa/runtime/request.h"
#include "cqa/util/cancellation.h"
#include "cqa/util/status.h"

namespace cqa {
namespace serve {

class Scheduler;

/// Shared slot a Ticket and the Scheduler communicate through. The
/// scheduler publishes exactly once; waiters block on the condition
/// variable. `cancel` is the token execution polls (armed with the
/// request deadline at submit time, so queue wait counts against it).
struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Result<Answer> result{Status::internal("pending")};

  CancelToken cancel;
  /// Caller-supplied Request.cancel, if any: Ticket::cancel() trips it
  /// too, because execution polls it instead of `cancel` then.
  CancelToken* external_cancel = nullptr;
  /// Set by Ticket::cancel(); a still-queued request resolves
  /// kCancelled without running.
  std::atomic<bool> cancel_requested{false};
};

class Ticket {
 public:
  Ticket() = default;

  /// False for a default-constructed (empty) ticket.
  bool valid() const { return state_ != nullptr; }

  /// Blocks until the scheduler publishes, then returns the answer.
  /// Calling wait() (or try_get()) again returns the same answer.
  Result<Answer> wait();

  /// Non-blocking: the answer once published, nullopt while pending.
  std::optional<Result<Answer>> try_get();

  /// Requests cancellation. Queued requests resolve Status::cancelled
  /// without running; an executing request's token trips, and it
  /// resolves to whatever the degradation ladder produces. Either way
  /// the ticket still resolves -- no waiter is ever stranded.
  void cancel();

 private:
  friend class Scheduler;
  explicit Ticket(std::shared_ptr<TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<TicketState> state_;
};

}  // namespace serve
}  // namespace cqa

#endif  // CQA_SERVE_TICKET_H_
