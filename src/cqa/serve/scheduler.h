// serve::Scheduler -- asynchronous batched execution of Session
// requests, with admission control.
//
// submit() enqueues a request into one of three per-priority FIFO lanes
// and returns a Ticket immediately; a small set of executor threads
// drains the lanes. The scheduler is where requests first interact:
//
//   - Coalescing: when an executor dequeues a request, every queued
//     request with an identical fingerprint (same kind, query, vars,
//     budget, strategy, seed) rides along and receives a copy of the
//     leader's answer -- N duplicates cost one computation. Below the
//     request level, executors run inside a ServeFlightScope, so
//     *overlapping* requests that share a rewrite or exact-volume cache
//     key single-flight through the EvalCache FlightTable as well.
//     Both paths count into serve_coalesced_total.
//   - MC batching: queued volume requests that force kMonteCarlo on the
//     same (query, output_vars) are fused into one pooled
//     estimate_partial_batch call. Each keeps its own seed stream and
//     cancel token, so every answer is bitwise identical to a solo run.
//   - Admission control: the queue is bounded. Over capacity, volume
//     requests are shed to the last degradation rung (trivial 1/2 with
//     honest [0, 1] bars, guard.shed = true) instead of being rejected;
//     kinds the ladder cannot serve get a typed kResourceExhausted.
//   - Deadline awareness: a request within promote_within_ms of its
//     deadline is dispatched next regardless of lane, so near-deadline
//     work is not starved by a full interactive lane. Deadlines are
//     armed at submit time -- queue wait counts against the budget.
//
// Metrics: serve_queue_depth (gauge + peak), serve_submitted_total,
// serve_coalesced_total, serve_mc_batched_total, serve_shed_total,
// serve_wait_ns (admission-to-dispatch latency histogram).

#ifndef CQA_SERVE_SCHEDULER_H_
#define CQA_SERVE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cqa/runtime/metrics.h"
#include "cqa/runtime/request.h"
#include "cqa/serve/ticket.h"

namespace cqa {

class Session;

namespace serve {

struct SchedulerOptions {
  std::size_t executors = 2;          // dispatcher threads
  std::size_t queue_capacity = 256;   // total queued requests before shed
  std::int64_t promote_within_ms = 5; // near-deadline promotion window
  std::size_t max_mc_batch = 8;       // requests fused per MC batch
};

/// Platform-stable binary fingerprint over every answer-affecting field
/// of a Request: fixed-width little-endian integers, IEEE-754 bit
/// patterns for doubles, and u64 little-endian length prefixes on every
/// caller-controlled string (so no choice of query or variable names
/// can collide with another request's encoding). Two processes -- or
/// two builds on different platforms -- fingerprint the same request to
/// the same bytes, which is what cross-process coalescing in
/// cqa::served's shard router and the disk-backed result cache key on.
/// The leading byte is a fingerprint-format version: bump it whenever
/// an answer-affecting field is added, so stale disk-cache entries can
/// never alias a new request shape.
std::string request_fingerprint(const Request& request);

class Scheduler {
 public:
  Scheduler(Session* session, const SchedulerOptions& options = {});
  ~Scheduler();  // stops executors, resolves every still-queued ticket

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Validates and enqueues; never blocks on execution. The Ticket is
  /// already resolved when validation fails or admission sheds.
  Ticket submit(Request request);

  /// Test seam: executors stop dequeuing (submissions still admit), so
  /// a test can pile up duplicates and assert they coalesce. resume()
  /// restarts dispatch.
  void pause();
  void resume();

  std::size_t queue_depth() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    Request request;
    std::shared_ptr<TicketState> state;
    Clock::time_point enqueued_at;
    Clock::time_point deadline_at;  // only meaningful if has_deadline
    bool has_deadline = false;
    std::string fingerprint;  // "" = never coalesced
  };

  /// One unit of executor work: a leader job plus the queued duplicates
  /// that will receive copies of its answer.
  struct Exec {
    Job job;
    std::vector<Job> duplicates;
  };

  void executor_loop();
  // All three run under mu_.
  Job pop_head();
  std::vector<Exec> collect_group(Job head);
  bool lanes_empty() const;

  void execute(std::vector<Exec> group);
  Result<Answer> run_job(Job& job);
  void publish(const std::shared_ptr<TicketState>& state,
               Result<Answer> result);

  static std::string fingerprint_of(const Request& request);
  static bool mc_batchable(const Request& a, const Request& b);

  Session* session_;
  SchedulerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job> lanes_[kNumPriorities];
  std::size_t queued_ = 0;
  bool paused_ = false;
  bool stop_ = false;
  std::vector<std::thread> executors_;

  Gauge* queue_depth_;
  Counter* submitted_;
  Counter* coalesced_;
  Counter* batched_;
  Counter* shed_;
  Histogram* wait_ns_;
};

}  // namespace serve
}  // namespace cqa

#endif  // CQA_SERVE_SCHEDULER_H_
