#include "cqa/vc/sample_bounds.h"

#include <algorithm>
#include <cmath>

#include "cqa/util/status.h"

namespace cqa {

std::size_t blumer_sample_bound(double epsilon, double delta,
                                double vc_dimension) {
  CQA_CHECK(epsilon > 0 && epsilon < 1);
  CQA_CHECK(delta > 0 && delta < 1);
  CQA_CHECK(vc_dimension >= 0);
  const double log2e = std::log2(2.0 / delta);
  const double a = (4.0 / epsilon) * log2e;
  const double b = (8.0 * vc_dimension / epsilon) * std::log2(13.0 / epsilon);
  return static_cast<std::size_t>(std::floor(std::max(a, b))) + 1;
}

double goldberg_jerrum_constant(std::size_t k, std::size_t p, std::size_t q,
                                std::size_t degree, std::size_t atoms) {
  CQA_CHECK(k >= 1);
  const double d = std::max<std::size_t>(degree, 1);
  const double inner =
      8.0 * std::exp(1.0) * d * static_cast<double>(std::max<std::size_t>(p, 1)) *
      static_cast<double>(std::max<std::size_t>(atoms, 1));
  return 16.0 * static_cast<double>(k) * static_cast<double>(p + q) *
         (std::log2(inner) + 1.0);
}

double vc_dimension_bound(double c, std::size_t db_size) {
  return c * std::log2(static_cast<double>(std::max<std::size_t>(db_size, 2)));
}

}  // namespace cqa
