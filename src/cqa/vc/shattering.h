// VC dimension of definable families F_phi(D) = { phi(a, D) : a }.
//
// Exact shattering computation over finite restrictions: the family is
// restricted to a finite parameter pool and a finite ground set, giving a
// boolean trace matrix whose VC dimension we compute exactly. The trace
// VC dimension lower-bounds the family's; for the Proposition-5 instance
// it attains the paper's log|D| bound.

#ifndef CQA_VC_SHATTERING_H_
#define CQA_VC_SHATTERING_H_

#include <cstdint>
#include <vector>

#include "cqa/aggregate/database.h"

namespace cqa {

/// Membership traces of a set family over a finite ground set: one bitmask
/// per set, bit i = membership of ground element i. Ground sets up to 64
/// elements.
class TraceFamily {
 public:
  explicit TraceFamily(std::size_t ground_size) : ground_size_(ground_size) {
    CQA_CHECK(ground_size <= 64);
  }

  void add_trace(std::uint64_t mask);
  std::size_t ground_size() const { return ground_size_; }
  std::size_t num_traces() const { return traces_.size(); }
  const std::vector<std::uint64_t>& traces() const { return traces_; }

  /// True iff the subset (as a mask over ground positions) is shattered.
  bool shatters(std::uint64_t subset) const;

  /// Exact VC dimension of the trace family.
  int vc_dimension() const;

 private:
  std::size_t ground_size_;
  std::vector<std::uint64_t> traces_;
};

/// Builds the trace family of { phi(a, D) : a in param_pool } restricted
/// to ground_set. `param_vars` and `element_vars` name phi's variable
/// slots for a and for the element tuple.
Result<TraceFamily> build_traces(const Database& db, const FormulaPtr& phi,
                                 const std::vector<std::size_t>& param_vars,
                                 const std::vector<std::size_t>& element_vars,
                                 const std::vector<RVec>& param_pool,
                                 const std::vector<RVec>& ground_set);

/// The Proposition-5 witness: a quantifier-free query phi(x, y) = Bit(x, y)
/// and databases D_k with VCdim(F_phi(D_k)) = k >= log |D_k|.
struct Prop5Instance {
  Database db;
  FormulaPtr phi;          // Bit(x, y)
  std::size_t param_var;   // x
  std::size_t element_var; // y
  std::vector<RVec> param_pool;
  std::vector<RVec> ground_set;
  std::size_t db_size;     // card(adom(D))
};

/// Builds D_k: Bit(a, y) for a in [0, 2^k), y in [0, k), bit y of a set.
Prop5Instance make_prop5_instance(std::size_t k);

}  // namespace cqa

#endif  // CQA_VC_SHATTERING_H_
