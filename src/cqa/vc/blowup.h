// Size accounting for the Karpinski-Macintyre derandomized approximation
// formulas (the Section-3 blow-up critique).
//
// The KM construction (as sketched in the paper) takes an M-point sample
// bound from the VC/learning theorem and derandomizes it Lautemann-style:
// the output formula existentially quantifies T translate vectors of the
// whole sample space (dimension M*m each), universally quantifies one more
// sample-space point, and repeats the "fraction of the sample falling into
// phi" counting subformula once per translate. This module computes the
// resulting atom/quantifier counts under that explicit cost model. The
// model is conservative (Lautemann constants, not [25]'s); the paper's own
// accounting reaches ~1e9 atoms and ~1e11 quantifiers at eps = 1/10 --
// ours lands within a couple orders of magnitude on the same side of
// "utterly infeasible", which is the claim being reproduced.

#ifndef CQA_VC_BLOWUP_H_
#define CQA_VC_BLOWUP_H_

#include <cstddef>

namespace cqa {

/// Input description of the query being approximated.
struct BlowupInput {
  /// Atomic subformulas after plugging the database into the query (the
  /// paper's example: >= 2n for an n-element unary relation).
  std::size_t atoms;
  /// Dimension m of the volume variables y.
  std::size_t m;
  /// VC dimension of the definable family.
  double vc_dim;
  /// Target absolute accuracy.
  double epsilon;
};

/// Size of the derandomized approximation formula.
struct BlowupEstimate {
  std::size_t sample_size;     // M
  std::size_t translates;      // T (Lautemann repetition count)
  double quantifiers;          // total quantified real variables
  double atom_count;           // total atomic subformulas
};

/// Applies the cost model.
BlowupEstimate km_blowup(const BlowupInput& in);

/// Convenience: the paper's Section-3 example (phi over an n-element
/// unary U, m = 2) at accuracy eps.
BlowupEstimate km_blowup_section3_example(std::size_t n, double eps);

}  // namespace cqa

#endif  // CQA_VC_BLOWUP_H_
