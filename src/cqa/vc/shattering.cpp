#include "cqa/vc/shattering.h"

#include <algorithm>
#include <set>

namespace cqa {

void TraceFamily::add_trace(std::uint64_t mask) {
  if (ground_size_ < 64) {
    mask &= (1ull << ground_size_) - 1;
  }
  traces_.push_back(mask);
}

bool TraceFamily::shatters(std::uint64_t subset) const {
  // Project every trace onto the subset's positions and count distinct
  // projections; shattered iff all 2^|subset| appear.
  const int bits = __builtin_popcountll(subset);
  if (bits > 26) return false;  // 2^bits would not be enumerable anyway
  std::set<std::uint64_t> seen;
  const std::uint64_t want = 1ull << bits;
  for (std::uint64_t t : traces_) {
    // Compact extract of the subset bits (PEXT by hand).
    std::uint64_t proj = 0;
    int out = 0;
    std::uint64_t s = subset;
    while (s) {
      int b = __builtin_ctzll(s);
      proj |= ((t >> b) & 1ull) << out;
      ++out;
      s &= s - 1;
    }
    seen.insert(proj);
    if (seen.size() == want) return true;
  }
  return false;
}

int TraceFamily::vc_dimension() const {
  if (traces_.empty()) return -1;  // empty family shatters nothing
  // Level-wise search with monotone pruning: a set can only be shattered
  // if all its (k-1)-subsets are.
  std::vector<std::uint64_t> frontier;  // shattered sets of current size
  frontier.push_back(0);                // empty set is always shattered
  int dim = 0;
  const std::size_t n = ground_size_;
  while (true) {
    std::set<std::uint64_t> next;
    for (std::uint64_t s : frontier) {
      // Try extending by any position above the highest set bit (canonical
      // generation), but extension by any new bit is fine for candidates;
      // restrict to ascending to avoid duplicates.
      int start = s == 0 ? 0 : 64 - __builtin_clzll(s);
      for (std::size_t b = static_cast<std::size_t>(start); b < n; ++b) {
        std::uint64_t cand = s | (1ull << b);
        if (next.count(cand)) continue;
        if (shatters(cand)) next.insert(cand);
      }
    }
    if (next.empty()) return dim;
    ++dim;
    frontier.assign(next.begin(), next.end());
  }
}

Result<TraceFamily> build_traces(const Database& db, const FormulaPtr& phi,
                                 const std::vector<std::size_t>& param_vars,
                                 const std::vector<std::size_t>& element_vars,
                                 const std::vector<RVec>& param_pool,
                                 const std::vector<RVec>& ground_set) {
  if (ground_set.size() > 64) {
    return Status::invalid("ground set too large (max 64)");
  }
  TraceFamily family(ground_set.size());
  for (const RVec& a : param_pool) {
    if (a.size() != param_vars.size()) {
      return Status::invalid("parameter tuple arity mismatch");
    }
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < ground_set.size(); ++i) {
      const RVec& x = ground_set[i];
      if (x.size() != element_vars.size()) {
        return Status::invalid("ground tuple arity mismatch");
      }
      std::map<std::size_t, Rational> assignment;
      for (std::size_t j = 0; j < param_vars.size(); ++j) {
        assignment[param_vars[j]] = a[j];
      }
      for (std::size_t j = 0; j < element_vars.size(); ++j) {
        assignment[element_vars[j]] = x[j];
      }
      auto r = db.holds(phi, assignment);
      if (!r.is_ok()) return r.status();
      if (r.value()) mask |= 1ull << i;
    }
    family.add_trace(mask);
  }
  return family;
}

Prop5Instance make_prop5_instance(std::size_t k) {
  CQA_CHECK(k >= 1 && k <= 16);
  Prop5Instance inst;
  std::vector<RVec> tuples;
  const std::size_t pow2 = 1ull << k;
  for (std::size_t a = 0; a < pow2; ++a) {
    for (std::size_t y = 0; y < k; ++y) {
      if (a & (1ull << y)) {
        tuples.push_back({Rational(static_cast<std::int64_t>(a)),
                          Rational(static_cast<std::int64_t>(y))});
      }
    }
  }
  CQA_CHECK(inst.db.add_finite("Bit", 2, std::move(tuples)).is_ok());
  inst.phi = Formula::predicate(
      "Bit", {Polynomial::variable(0), Polynomial::variable(1)});
  inst.param_var = 0;
  inst.element_var = 1;
  for (std::size_t a = 0; a < pow2; ++a) {
    inst.param_pool.push_back({Rational(static_cast<std::int64_t>(a))});
  }
  for (std::size_t y = 0; y < k; ++y) {
    inst.ground_set.push_back({Rational(static_cast<std::int64_t>(y))});
  }
  inst.db_size = inst.db.active_domain().size();
  return inst;
}

}  // namespace cqa
