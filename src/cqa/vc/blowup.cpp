#include "cqa/vc/blowup.h"

#include <algorithm>
#include <cmath>

#include "cqa/vc/sample_bounds.h"

namespace cqa {

BlowupEstimate km_blowup(const BlowupInput& in) {
  BlowupEstimate out;
  // Derandomization needs the per-sample failure probability small enough
  // for Lautemann's union bound over T translates; T is about the
  // dimension of the sample space, so take delta = 1 / (M m) and iterate
  // the implicit bound to a fixed point.
  double m_est = blumer_sample_bound(in.epsilon / 2.0, 0.25, in.vc_dim);
  for (int iter = 0; iter < 8; ++iter) {
    double delta = 1.0 / std::max(2.0, m_est * static_cast<double>(in.m));
    m_est = blumer_sample_bound(in.epsilon / 2.0, delta, in.vc_dim);
  }
  out.sample_size = static_cast<std::size_t>(m_est);
  // Lautemann: T = ceil(dimension of the random object) translates.
  const double space_dim =
      m_est * static_cast<double>(in.m);  // one sample = M points in R^m
  out.translates = static_cast<std::size_t>(std::ceil(space_dim));
  // Quantifier prefix: T existential translate vectors of dimension
  // space_dim, plus one universal vector of the same dimension.
  out.quantifiers = (static_cast<double>(out.translates) + 1.0) * space_dim;
  // Body: the counting subformula (all query atoms evaluated at each of
  // the M sample points, plus comparison circuitry of the same order)
  // repeated once per translate.
  const double counting =
      2.0 * m_est * static_cast<double>(std::max<std::size_t>(in.atoms, 1));
  out.atom_count = static_cast<double>(out.translates) * counting;
  return out;
}

BlowupEstimate km_blowup_section3_example(std::size_t n, double eps) {
  BlowupInput in;
  in.atoms = 2 * n;  // the paper: "> 2n atomic subformulae"
  in.m = 2;          // y = (y1, y2)
  // Family of sets {(y1,y2) : x1<y1<x2, 0<=y2<=y1} with (x1,x2) ranging
  // over pairs of the n stored reals: stabbed intervals + a half-plane,
  // VC dimension <= 4 (two threshold parameters); use 4.
  in.vc_dim = 4;
  in.epsilon = eps;
  return km_blowup(in);
}

}  // namespace cqa
