// The paper's quantitative sample-complexity bounds.
//
// Blumer-Ehrenfeucht-Haussler-Warmuth [10], as quoted in Section 3:
//   M > max( (4/eps) log(2/delta), (8 d / eps) log(13/eps) )
// gives an M-point sample whose hit-fraction eps-approximates VOL_I of
// every set in a VC-dimension-d family simultaneously, w.p. >= 1 - delta.
//
// Goldberg-Jerrum [17], as quoted after Proposition 6: for an active-
// semantics FO+POLY query with |y| = k outputs, quantifier rank q, max
// schema arity p, max polynomial degree d, and s atomic subformulas,
//   C = 16 k (p+q) (log2(8 e d p s) + 1),   VCdim(F_phi(D)) < C log2|D|.

#ifndef CQA_VC_SAMPLE_BOUNDS_H_
#define CQA_VC_SAMPLE_BOUNDS_H_

#include <cstddef>

namespace cqa {

/// Smallest integer M satisfying the Blumer et al. bound.
std::size_t blumer_sample_bound(double epsilon, double delta,
                                double vc_dimension);

/// Goldberg-Jerrum query constant C (logs base 2).
double goldberg_jerrum_constant(std::size_t k, std::size_t p, std::size_t q,
                                std::size_t degree, std::size_t atoms);

/// The Proposition-6 VC-dimension bound C log2 |D|.
double vc_dimension_bound(double c, std::size_t db_size);

}  // namespace cqa

#endif  // CQA_VC_SAMPLE_BOUNDS_H_
