// Cross-strategy oracles: the paper's own structure as test invariants.
//
// Differential oracles compare independent computation paths on the
// same formula (Section 2's semantics-preserving QE, Theorem 3's exact
// sweep, Theorem 4's Monte-Carlo bars, the DFK hit-and-run estimator,
// the serial vs pooled sampler, cache-hot vs cache-cold answers).
// Metamorphic oracles check volume laws that must hold for *any*
// correct engine: translation invariance, additivity over disjoint
// splits, monotonicity under conjunction, scaling vol(cA) = c^k vol(A),
// and complement-within-box.
//
// Oracles come in two accounting classes. Deterministic oracles must
// never fail: one failing trial is a bug. Statistical oracles (the
// Monte-Carlo bar checks) are *allowed* to fail with probability <=
// delta per trial by Theorem 4; the runner accounts observed failures
// against a binomial budget over the whole run instead of failing on
// the first miss.
//
// Every oracle accepts an inject_fault flag -- the test-only hook that
// deliberately breaks one side of its comparison -- so the harness
// itself (detection, shrinking, repro writing, exit codes) is testable.

#ifndef CQA_CHECK_ORACLES_H_
#define CQA_CHECK_ORACLES_H_

#include <memory>
#include <string>
#include <vector>

#include "cqa/check/generator.h"
#include "cqa/runtime/session.h"

namespace cqa {

/// Outcome of one oracle trial.
enum class TrialStatus {
  kPass,
  kFail,  // invariant violated (deterministic failure: always a bug)
  kSkip,  // formula outside the oracle's domain (degenerate, empty, ...)
};

struct TrialResult {
  TrialStatus status = TrialStatus::kPass;
  std::string detail;

  static TrialResult pass() { return {TrialStatus::kPass, ""}; }
  static TrialResult skip(std::string why) {
    return {TrialStatus::kSkip, std::move(why)};
  }
  static TrialResult fail(std::string why) {
    return {TrialStatus::kFail, std::move(why)};
  }
};

/// What one trial runs against. The database/session pair is shared
/// across an oracle's trials (deliberately: that is what exercises the
/// caches); fresh() builds an isolated cold pair when an oracle needs
/// one.
struct CheckContext {
  ConstraintDatabase* db = nullptr;
  Session* session = nullptr;
  double epsilon = 0.1;  // per-trial MC accuracy target
  double delta = 0.1;    // per-trial MC failure probability
};

class Oracle {
 public:
  virtual ~Oracle() = default;
  /// Stable snake_case identifier (metrics names, repro files, --oracle).
  virtual const char* name() const = 0;
  /// Statistical oracles may fail at rate <= delta per trial; the
  /// runner budgets their failures instead of treating each as a bug.
  virtual bool statistical() const { return false; }
  /// Oracle-specific generator tuning (e.g. convex-only, quantifiers).
  virtual GenOptions tune(GenOptions base) const { return base; }
  /// Runs one trial. `trial_seed` seeds all oracle-local randomness.
  virtual TrialResult check(const CheckContext& ctx,
                            const GeneratedFormula& g,
                            std::uint64_t trial_seed,
                            bool inject_fault) const = 0;
};

/// The registry: every oracle, differential then metamorphic. Pointers
/// are to process-lifetime singletons.
const std::vector<const Oracle*>& all_oracles();

/// Lookup by name(); nullptr when unknown.
const Oracle* find_oracle(const std::string& name);

}  // namespace cqa

#endif  // CQA_CHECK_ORACLES_H_
