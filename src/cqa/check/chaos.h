// Chaos mode: the differential/metamorphic oracles re-run under random
// seeded fault plans (cqa::guard) to prove the query path degrades, it
// never lies.
//
// Each trial installs a FaultPlan::random(...) injector and runs one
// oracle trial exactly as the plain runner would. The bar is *not* that
// trials pass -- injected allocation failures, spurious cancellations
// and worker throws legitimately break comparisons -- but that every
// outcome is one of:
//
//   pass       the fault landed somewhere harmless (or degraded answers
//              still satisfied the invariant);
//   skip       the formula was outside the oracle's domain;
//   contained  the trial failed *loudly*: a typed engine error
//              (Cancelled / ResourceExhausted / Internal / ...) or a
//              caught exception, while faults actually fired;
//   stat miss  a statistical oracle's Theorem-4 bars missed; budgeted
//              against the same binomial allowance as the plain runner.
//
// Anything else -- a wrong *value* under injection, a failure with no
// fault fired, or an exception with no fault fired -- is an unsound
// violation: the chaos run fails. A run that injected zero faults
// total also fails (the harness must prove the hooks are live).

#ifndef CQA_CHECK_CHAOS_H_
#define CQA_CHECK_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cqa/check/generator.h"
#include "cqa/check/oracles.h"
#include "cqa/guard/guard.h"
#include "cqa/runtime/metrics.h"

namespace cqa {

struct ChaosOptions {
  std::size_t trials = 300;     // total (round-robin over the oracles)
  std::uint64_t seed = 1;       // base seed (trial t uses seed + t)
  /// Oracle names to rotate through; empty = all registered oracles.
  std::vector<std::string> oracle_names;
  GenOptions gen;               // base generator knobs (oracles tune())
  double epsilon = 0.1;         // MC accuracy target per trial
  double delta = 0.1;           // MC failure probability per trial
};

/// One soundness violation: the only thing that fails a chaos run.
struct ChaosViolation {
  std::string oracle;
  std::uint64_t formula_seed = 0;
  std::string plan;    // guard::plan_to_string of the trial's FaultPlan
  std::string detail;  // oracle detail or exception message
};

struct ChaosReport {
  std::size_t trials = 0;
  std::size_t passed = 0;
  std::size_t skipped = 0;
  std::size_t contained = 0;           // loud typed failures under faults
  std::size_t stat_misses = 0;         // statistical-oracle bar misses
  std::size_t allowed_stat_misses = 0; // binomial budget for the misses
  std::uint64_t faults_injected = 0;   // total fires across all trials
  std::uint64_t faults_by_site[guard::kNumFaultSites] = {};
  std::vector<ChaosViolation> violations;

  bool ok() const {
    return violations.empty() && stat_misses <= allowed_stat_misses &&
           (trials == 0 || faults_injected > 0);
  }
};

/// Runs `options.trials` chaos trials. Fault observability lands in
/// `metrics` when non-null: guard_fault_injected_total and per-site
/// guard_fault_injected_<site>_total, plus each oracle session's own
/// runtime counters (absorbed, so guard_quota_trip_* and
/// guard_cache_poison_detected_total surface too).
ChaosReport run_chaos(const ChaosOptions& options,
                      MetricsRegistry* metrics = nullptr);

}  // namespace cqa

#endif  // CQA_CHECK_CHAOS_H_
