#include "cqa/check/oracles.h"

#include <cmath>
#include <map>
#include <sstream>

#include "cqa/approx/random.h"
#include "cqa/logic/decide.h"
#include "cqa/logic/eval.h"
#include "cqa/logic/transform.h"
#include "cqa/runtime/parallel_sampler.h"

namespace cqa {

namespace {

// Stream tags keeping oracle-local randomness disjoint from the
// generator's and the samplers' streams.
constexpr std::uint64_t kPointStream = 0x504F494E54535431ull;
constexpr std::uint64_t kTransformStream = 0x5452414E53464Dull;

std::string rat(const Rational& r) {
  return r.to_string();
}

Request volume_request(const GeneratedFormula& g, const CheckContext& ctx,
                       std::uint64_t seed) {
  Request req;
  req.kind = RequestKind::kVolume;
  req.query = g.text();
  req.output_vars = g.output_vars;
  req.budget.epsilon = ctx.epsilon;
  req.budget.delta = ctx.delta;
  req.seed = seed;
  return req;
}

Result<VolumeAnswer> forced_answer(const GeneratedFormula& g,
                                   const CheckContext& ctx,
                                   VolumeStrategy strategy,
                                   std::uint64_t seed) {
  Request req = volume_request(g, ctx, seed);
  req.strategy = strategy;
  auto a = ctx.session->run(req);
  if (!a.is_ok()) return a.status();
  return a.value().volume;
}

// Exact rational volume of an arbitrary formula AST in the generator's
// variable space (printed, then run through the session's exact sweep).
Result<Rational> exact_volume_of(const CheckContext& ctx,
                                 const FormulaPtr& f,
                                 const GeneratedFormula& shape) {
  GeneratedFormula wrapped = shape;
  wrapped.boxed = f;
  auto v = forced_answer(wrapped, ctx, VolumeStrategy::kExactSweep,
                         shape.seed);
  if (!v.is_ok()) return v.status();
  if (!v.value().exact) {
    return Status::internal("exact sweep returned no exact value");
  }
  return *v.value().exact;
}

Result<Rational> exact_volume(const CheckContext& ctx,
                              const GeneratedFormula& g) {
  return exact_volume_of(ctx, g.boxed, g);
}

// A small random rational with denominator <= 4 in [-max_num/1, ...].
Rational small_rational(Xoshiro* rng, int lo_num, int hi_num) {
  const int span = hi_num - lo_num + 1;
  const int num = lo_num + static_cast<int>(rng->next() % span);
  const int den = 1 + static_cast<int>(rng->next() % 4);
  return Rational(num, den);
}

// ---------------------------------------------------------------------
// Differential oracles
// ---------------------------------------------------------------------

// Theorem 3 vs Theorem 4: the Monte-Carlo bars [lower, upper] must
// contain the exact rational volume -- except with probability <= delta
// per trial, which the runner budgets.
class ExactVsMcOracle : public Oracle {
 public:
  const char* name() const override { return "exact_vs_mc"; }
  bool statistical() const override { return true; }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t trial_seed,
                    bool inject_fault) const override {
    auto exact = exact_volume(ctx, g);
    if (!exact.is_ok()) return TrialResult::skip(exact.status().to_string());
    auto mc = forced_answer(g, ctx, VolumeStrategy::kMonteCarlo, trial_seed);
    if (!mc.is_ok()) {
      return TrialResult::fail("MC refused a formula exact accepted: " +
                               mc.status().to_string());
    }
    double lower = mc.value().lower.value_or(0.0);
    double upper = mc.value().upper.value_or(1.0);
    if (inject_fault) {
      // Broken-strategy hook: shift the bars clear of the answer.
      lower += 0.5 + 2 * ctx.epsilon;
      upper += 0.5 + 2 * ctx.epsilon;
    }
    const double x = exact.value().to_double();
    if (x < lower - 1e-9 || x > upper + 1e-9) {
      std::ostringstream why;
      why << "exact " << rat(exact.value()) << " = " << x
          << " outside MC bars [" << lower << ", " << upper << "]";
      return TrialResult::fail(why.str());
    }
    return TrialResult::pass();
  }
};

// Theorem 3 vs the DFK hit-and-run estimator on convex regions. The
// estimator carries no hard (eps, delta) guarantee, so the comparison
// uses a loose tolerance and is budgeted like a statistical oracle.
class ExactVsHitAndRunOracle : public Oracle {
 public:
  const char* name() const override { return "exact_vs_hit_and_run"; }
  bool statistical() const override { return true; }
  GenOptions tune(GenOptions base) const override {
    base.convex_only = true;
    base.quantifiers = 0;
    base.linear_only = true;
    return base;
  }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t trial_seed,
                    bool inject_fault) const override {
    auto exact = exact_volume(ctx, g);
    if (!exact.is_ok()) return TrialResult::skip(exact.status().to_string());
    const double x = exact.value().to_double();
    if (x < 0.01) {
      return TrialResult::skip("region too small/degenerate for HAR");
    }
    auto har =
        forced_answer(g, ctx, VolumeStrategy::kHitAndRun, trial_seed);
    if (!har.is_ok()) {
      return TrialResult::fail(
          "hit-and-run refused a nondegenerate convex region: " +
          har.status().to_string());
    }
    double estimate = har.value().estimate.value_or(0.0);
    if (inject_fault) estimate += 1.0;
    const double tolerance = std::max(0.05, 0.4 * x);
    if (std::abs(estimate - x) > tolerance) {
      std::ostringstream why;
      why << "hit-and-run " << estimate << " vs exact " << x
          << " (tolerance " << tolerance << ")";
      return TrialResult::fail(why.str());
    }
    return TrialResult::pass();
  }
};

// Section 2: QE preserves semantics. The raw quantified formula
// (decided by the sample-point procedure) and the QE rewrite (evaluated
// directly) must agree on membership of random rational points.
class QeMembershipOracle : public Oracle {
 public:
  const char* name() const override { return "qe_membership"; }
  GenOptions tune(GenOptions base) const override {
    base.quantifiers = 2;
    base.separable_quantifiers = true;  // keep decide() applicable
    base.linear_only = true;            // QE needs FO+LIN
    base.allow_eq_atoms = true;
    return base;
  }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t trial_seed,
                    bool inject_fault) const override {
    Request req;
    req.kind = RequestKind::kRewrite;
    req.query = g.core_text();
    auto rewritten = ctx.session->run(req);
    if (!rewritten.is_ok()) {
      return TrialResult::skip("rewrite failed: " +
                               rewritten.status().to_string());
    }
    const FormulaPtr& qf = rewritten.value().formula;

    Xoshiro rng(stream_seed(trial_seed, kPointStream));
    const std::size_t db_span = ctx.db->vars().size();
    for (int p = 0; p < 8; ++p) {
      // Points inside and outside the unit box (the core is unclipped).
      std::map<std::size_t, Rational> raw_point;
      RVec db_point(db_span, Rational(0));
      for (std::size_t i = 0; i < g.dimension; ++i) {
        const Rational value = small_rational(&rng, -4, 8);
        raw_point[i] = value;
        const int idx = ctx.db->vars().find(g.output_vars[i]);
        if (idx < 0) return TrialResult::fail("output var vanished");
        db_point[static_cast<std::size_t>(idx)] = value;
      }
      auto raw = decide(g.core, raw_point);
      if (!raw.is_ok()) {
        // Outside decide()'s separable fragment: not this oracle's bug.
        return TrialResult::skip("decide: " + raw.status().to_string());
      }
      auto rewritten_truth = eval_qf(qf, db_point);
      if (!rewritten_truth.is_ok()) {
        return TrialResult::fail("eval of QE rewrite failed: " +
                                 rewritten_truth.status().to_string());
      }
      bool qe_says = rewritten_truth.value();
      if (inject_fault) qe_says = !qe_says;
      if (raw.value() != qe_says) {
        std::ostringstream why;
        why << "membership disagrees at point (";
        for (std::size_t i = 0; i < g.dimension; ++i) {
          why << (i ? ", " : "") << rat(raw_point[i]);
        }
        why << "): raw=" << (raw.value() ? "in" : "out")
            << " qe=" << (qe_says ? "in" : "out");
        return TrialResult::fail(why.str());
      }
    }
    return TrialResult::pass();
  }
};

// PR 1's determinism contract: the chunked Theorem-4 sampler returns a
// bitwise identical estimate serially and on the pool.
class SerialVsParallelOracle : public Oracle {
 public:
  const char* name() const override { return "serial_vs_parallel"; }
  GenOptions tune(GenOptions base) const override {
    base.linear_only = false;  // membership sampling covers FO+POLY
    base.quantifiers = 0;
    return base;
  }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t trial_seed,
                    bool inject_fault) const override {
    auto parsed = ctx.db->parse(g.text());
    if (!parsed.is_ok()) {
      return TrialResult::fail("generated formula failed to parse: " +
                               parsed.status().to_string());
    }
    std::vector<std::size_t> element_vars;
    for (const auto& var : g.output_vars) {
      const int idx = ctx.db->vars().find(var);
      if (idx < 0) return TrialResult::fail("output var vanished");
      element_vars.push_back(static_cast<std::size_t>(idx));
    }
    // Odd sample size exercises the ragged tail chunk.
    const std::size_t sample_size = 4097;
    ParallelSampler sampler(&ctx.db->db(), parsed.value(), element_vars,
                            sample_size, trial_seed, 256);
    auto serial = sampler.estimate({}, nullptr);
    if (!serial.is_ok()) {
      return TrialResult::skip("sampler: " + serial.status().to_string());
    }
    ParallelSampler pooled_sampler(&ctx.db->db(), parsed.value(),
                                   element_vars, sample_size, trial_seed,
                                   256);
    auto pooled = pooled_sampler.estimate({}, &ctx.session->pool());
    if (!pooled.is_ok()) {
      return TrialResult::fail("pooled sampler errored where serial ran: " +
                               pooled.status().to_string());
    }
    if (inject_fault) {
      // One phantom hit: the smallest nondeterminism a broken chunk
      // merge could introduce, visible on any formula.
      pooled = pooled.value() + 1.0 / static_cast<double>(sample_size);
    }
    if (serial.value() != pooled.value()) {
      std::ostringstream why;
      why.precision(17);
      why << "serial " << serial.value() << " != pooled " << pooled.value();
      return TrialResult::fail(why.str());
    }
    return TrialResult::pass();
  }
};

// The memo-cache must be semantically invisible: a cache-hot answer and
// a cache-cold answer (fresh session) are the same exact rational.
class CacheHotVsColdOracle : public Oracle {
 public:
  const char* name() const override { return "cache_hot_vs_cold"; }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t trial_seed,
                    bool inject_fault) const override {
    auto first = exact_volume(ctx, g);
    if (!first.is_ok()) return TrialResult::skip(first.status().to_string());
    auto hot = exact_volume(ctx, g);  // served from the volume cache
    if (!hot.is_ok()) {
      return TrialResult::fail("cache-hot rerun failed: " +
                               hot.status().to_string());
    }
    Rational hot_value = hot.value();
    if (inject_fault) hot_value += Rational(1, 3);

    ConstraintDatabase cold_db;
    register_generator_vars(&cold_db.vars(), g.dimension);
    SessionOptions cold_opts;
    cold_opts.threads = 1;
    Session cold_session(&cold_db, cold_opts);
    CheckContext cold_ctx = ctx;
    cold_ctx.db = &cold_db;
    cold_ctx.session = &cold_session;
    auto cold = exact_volume(cold_ctx, g);
    if (!cold.is_ok()) {
      return TrialResult::fail("cache-cold session failed: " +
                               cold.status().to_string());
    }
    if (first.value() != hot_value || hot_value != cold.value()) {
      std::ostringstream why;
      why << "cold " << rat(cold.value()) << " / first "
          << rat(first.value()) << " / hot " << rat(hot_value)
          << " disagree (seed " << trial_seed << ")";
      return TrialResult::fail(why.str());
    }
    return TrialResult::pass();
  }
};

// ---------------------------------------------------------------------
// Metamorphic oracles (exact rational laws; any violation is a bug)
// ---------------------------------------------------------------------

// Theorem 1's interval-translation gadget generalized: volume is
// translation invariant, vol(S + t) = vol(S).
class TranslationInvarianceOracle : public Oracle {
 public:
  const char* name() const override { return "translation_invariance"; }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t trial_seed,
                    bool inject_fault) const override {
    auto base = exact_volume(ctx, g);
    if (!base.is_ok()) return TrialResult::skip(base.status().to_string());

    Xoshiro rng(stream_seed(trial_seed, kTransformStream));
    std::map<std::size_t, Polynomial> shift;
    std::vector<Rational> offsets;
    for (std::size_t i = 0; i < g.dimension; ++i) {
      const Rational t = small_rational(&rng, -2, 2);
      offsets.push_back(t);
      shift.emplace(i, Polynomial::variable(i) -
                           Polynomial::constant(t));  // x in S+t iff x-t in S
    }
    FormulaPtr translated = substitute_vars(g.boxed, shift);
    auto moved = exact_volume_of(ctx, translated, g);
    if (!moved.is_ok()) {
      return TrialResult::fail("translated formula failed: " +
                               moved.status().to_string());
    }
    Rational moved_value = moved.value();
    if (inject_fault) moved_value += Rational(1, 7);
    if (moved_value != base.value()) {
      std::ostringstream why;
      why << "vol " << rat(base.value()) << " changed to "
          << rat(moved_value) << " under translation (";
      for (std::size_t i = 0; i < offsets.size(); ++i) {
        why << (i ? ", " : "") << rat(offsets[i]);
      }
      why << ")";
      return TrialResult::fail(why.str());
    }
    return TrialResult::pass();
  }
};

// Theorem 3's additivity over disjoint semi-linear cells: splitting by
// any hyperplane preserves total volume (the shared boundary is a
// measure-zero slice).
class UnionAdditivityOracle : public Oracle {
 public:
  const char* name() const override { return "union_additivity"; }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t trial_seed,
                    bool inject_fault) const override {
    auto whole = exact_volume(ctx, g);
    if (!whole.is_ok()) return TrialResult::skip(whole.status().to_string());

    Xoshiro rng(stream_seed(trial_seed, kTransformStream));
    const Rational c(1 + static_cast<int>(rng.next() % 3), 4);
    const Polynomial split =
        Polynomial::variable(0) - Polynomial::constant(c);
    FormulaPtr left =
        Formula::f_and(g.boxed, Formula::atom(split, RelOp::kLe));
    FormulaPtr right =
        Formula::f_and(g.boxed, Formula::atom(split, RelOp::kGe));
    auto vol_left = exact_volume_of(ctx, left, g);
    auto vol_right = exact_volume_of(ctx, right, g);
    if (!vol_left.is_ok() || !vol_right.is_ok()) {
      return TrialResult::fail("split volume failed: " +
                               (vol_left.is_ok() ? vol_right.status()
                                                 : vol_left.status())
                                   .to_string());
    }
    Rational sum = vol_left.value() + vol_right.value();
    if (inject_fault) sum += vol_left.value() + Rational(1, 9);
    if (sum != whole.value()) {
      std::ostringstream why;
      why << "vol(A & v0<=" << rat(c) << ") + vol(A & v0>=" << rat(c)
          << ") = " << rat(sum) << " != vol(A) = " << rat(whole.value());
      return TrialResult::fail(why.str());
    }
    return TrialResult::pass();
  }
};

// Monotonicity: conjoining any constraint can only shrink the set.
class ConjunctionMonotonicityOracle : public Oracle {
 public:
  const char* name() const override { return "conjunction_monotonicity"; }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t trial_seed,
                    bool inject_fault) const override {
    auto whole = exact_volume(ctx, g);
    if (!whole.is_ok()) return TrialResult::skip(whole.status().to_string());

    Xoshiro rng(stream_seed(trial_seed, kTransformStream));
    Polynomial h = Polynomial::constant(small_rational(&rng, -2, 2));
    for (std::size_t i = 0; i < g.dimension; ++i) {
      h += Polynomial::variable(i) * small_rational(&rng, -3, 3);
    }
    FormulaPtr conjoined =
        Formula::f_and(g.boxed, Formula::atom(h, RelOp::kLe));
    auto smaller = exact_volume_of(ctx, conjoined, g);
    if (!smaller.is_ok()) {
      return TrialResult::fail("conjoined volume failed: " +
                               smaller.status().to_string());
    }
    Rational value = smaller.value();
    if (inject_fault) value += whole.value() + Rational(1);
    if (value > whole.value()) {
      std::ostringstream why;
      why << "vol(A & H) = " << rat(value) << " > vol(A) = "
          << rat(whole.value());
      return TrialResult::fail(why.str());
    }
    return TrialResult::pass();
  }
};

// Scaling law: vol(cA) = c^k vol(A). x in cA iff x/c in A.
class ScalingOracle : public Oracle {
 public:
  const char* name() const override { return "scaling"; }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t trial_seed,
                    bool inject_fault) const override {
    auto base = exact_volume(ctx, g);
    if (!base.is_ok()) return TrialResult::skip(base.status().to_string());

    Xoshiro rng(stream_seed(trial_seed, kTransformStream));
    const Rational scales[] = {Rational(2), Rational(1, 2), Rational(3, 2)};
    const Rational c = scales[rng.next() % 3];
    std::map<std::size_t, Polynomial> sub;
    for (std::size_t i = 0; i < g.dimension; ++i) {
      sub.emplace(i, Polynomial::variable(i) * (Rational(1) / c));
    }
    FormulaPtr scaled = substitute_vars(g.boxed, sub);
    auto vol_scaled = exact_volume_of(ctx, scaled, g);
    if (!vol_scaled.is_ok()) {
      return TrialResult::fail("scaled formula failed: " +
                               vol_scaled.status().to_string());
    }
    Rational expected = base.value();
    for (std::size_t i = 0; i < g.dimension; ++i) expected *= c;
    if (inject_fault) expected = expected * c + Rational(1, 97);
    if (vol_scaled.value() != expected) {
      std::ostringstream why;
      why << "vol(" << rat(c) << "A) = " << rat(vol_scaled.value())
          << " != " << rat(c) << "^" << g.dimension << " vol(A) = "
          << rat(expected);
      return TrialResult::fail(why.str());
    }
    return TrialResult::pass();
  }
};

// Complement within the box: vol(A) + vol(box \ A) = vol(box) = 1.
class ComplementOracle : public Oracle {
 public:
  const char* name() const override { return "complement_within_box"; }

  TrialResult check(const CheckContext& ctx, const GeneratedFormula& g,
                    std::uint64_t /*trial_seed*/,
                    bool inject_fault) const override {
    auto inside = exact_volume(ctx, g);
    if (!inside.is_ok()) {
      return TrialResult::skip(inside.status().to_string());
    }
    FormulaPtr complement =
        Formula::f_and(Formula::f_not(g.core), g.box);
    auto outside = exact_volume_of(ctx, complement, g);
    if (!outside.is_ok()) {
      return TrialResult::fail("complement volume failed: " +
                               outside.status().to_string());
    }
    Rational box_volume(1);
    if (inject_fault) box_volume = Rational(6, 5);
    if (inside.value() + outside.value() != box_volume) {
      std::ostringstream why;
      why << "vol(A) + vol(box & !A) = "
          << rat(inside.value() + outside.value()) << " != vol(box) = "
          << rat(box_volume);
      return TrialResult::fail(why.str());
    }
    return TrialResult::pass();
  }
};

}  // namespace

const std::vector<const Oracle*>& all_oracles() {
  static const ExactVsMcOracle exact_vs_mc;
  static const ExactVsHitAndRunOracle exact_vs_har;
  static const QeMembershipOracle qe_membership;
  static const SerialVsParallelOracle serial_vs_parallel;
  static const CacheHotVsColdOracle cache;
  static const TranslationInvarianceOracle translation;
  static const UnionAdditivityOracle additivity;
  static const ConjunctionMonotonicityOracle monotonicity;
  static const ScalingOracle scaling;
  static const ComplementOracle complement;
  static const std::vector<const Oracle*> kAll = {
      &exact_vs_mc,  &exact_vs_har, &qe_membership, &serial_vs_parallel,
      &cache,        &translation,  &additivity,    &monotonicity,
      &scaling,      &complement,
  };
  return kAll;
}

const Oracle* find_oracle(const std::string& name) {
  for (const Oracle* oracle : all_oracles()) {
    if (name == oracle->name()) return oracle;
  }
  return nullptr;
}

}  // namespace cqa
