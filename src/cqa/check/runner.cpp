#include "cqa/check/runner.h"

#include <cmath>

#include "cqa/approx/random.h"
#include "cqa/check/shrinker.h"

namespace cqa {

namespace {

// FNV-1a, so each oracle's trial randomness is a distinct stream of the
// same base seed and oracles can be added without reshuffling others.
std::uint64_t oracle_stream(const char* name) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<std::uint64_t>(*p)) * 1099511628211ull;
  }
  return h;
}

struct OracleHarness {
  const Oracle* oracle;
  ConstraintDatabase db;
  Session session;
  CheckContext ctx;

  OracleHarness(const Oracle* o, const CheckOptions& options)
      : oracle(o), session(&db) {
    ctx.db = &db;
    ctx.session = &session;
    ctx.epsilon = options.epsilon;
    ctx.delta = options.delta;
  }
};

}  // namespace

std::size_t allowed_failures(std::size_t trials, double delta) {
  if (trials == 0) return 0;
  const double n = static_cast<double>(trials);
  const double mean = n * delta;
  const double sigma = std::sqrt(n * delta * (1.0 - delta));
  return static_cast<std::size_t>(std::ceil(mean + 3.0 * sigma)) + 1;
}

CheckReport run_checks(const CheckOptions& options,
                       MetricsRegistry* metrics) {
  std::vector<const Oracle*> selected;
  if (options.oracle_names.empty()) {
    selected = all_oracles();
  } else {
    for (const auto& name : options.oracle_names) {
      const Oracle* oracle = find_oracle(name);
      if (oracle != nullptr) selected.push_back(oracle);
    }
  }

  CheckReport report;
  for (const Oracle* oracle : selected) {
    OracleHarness harness(oracle, options);
    const GenOptions gen_options = oracle->tune(options.gen);
    const FormulaGen gen(gen_options);
    register_generator_vars(&harness.db.vars(), gen_options.dimension);
    const bool inject = options.fault_oracle == oracle->name();
    const std::uint64_t stream = oracle_stream(oracle->name());

    OracleStats stats;
    stats.name = oracle->name();
    stats.statistical = oracle->statistical();

    Counter* pass_counter = nullptr;
    Counter* fail_counter = nullptr;
    Counter* skip_counter = nullptr;
    Histogram* trial_hist = nullptr;
    if (metrics != nullptr) {
      const std::string prefix = "check." + stats.name + ".";
      pass_counter = metrics->counter(prefix + "pass");
      fail_counter = metrics->counter(prefix + "fail");
      skip_counter = metrics->counter(prefix + "skip");
      trial_hist = metrics->histogram(prefix + "trial");
    }

    for (std::size_t t = 0; t < options.trials; ++t) {
      const std::uint64_t formula_seed = options.seed + t;
      const GeneratedFormula g = gen.generate(formula_seed);
      const std::uint64_t trial_seed = stream_seed(formula_seed, stream);
      TrialResult result;
      {
        ScopedTimer timer(trial_hist);
        result = oracle->check(harness.ctx, g, trial_seed, inject);
      }
      ++stats.trials;
      switch (result.status) {
        case TrialStatus::kPass:
          ++stats.passed;
          if (pass_counter) pass_counter->inc();
          break;
        case TrialStatus::kSkip:
          ++stats.skipped;
          if (skip_counter) skip_counter->inc();
          break;
        case TrialStatus::kFail: {
          ++stats.failed;
          if (fail_counter) fail_counter->inc();
          if (stats.first_detail.empty()) stats.first_detail = result.detail;
          if (stats.repros.size() >= options.max_repros_per_oracle) break;
          GeneratedFormula culprit = g;
          if (options.shrink) {
            // Statistical failures are usually unlucky samples, not
            // shrinkable bugs; only deterministic failures minimize.
            if (!oracle->statistical()) {
              culprit = shrink(g, [&](const GeneratedFormula& candidate) {
                return oracle
                           ->check(harness.ctx, candidate, trial_seed,
                                   inject)
                           .status == TrialStatus::kFail;
              });
            }
          }
          Repro repro;
          repro.oracle = stats.name;
          repro.seed = formula_seed;
          repro.dimension = culprit.dimension;
          repro.formula = culprit.core_text();
          repro.detail = result.detail;
          if (!options.repro_dir.empty()) {
            const std::string path = options.repro_dir + "/" + stats.name +
                                     "-" + std::to_string(formula_seed) +
                                     ".cqa";
            write_repro_file(repro, path);  // best-effort
          }
          stats.repros.push_back(std::move(repro));
          break;
        }
      }
    }

    // Delta budget covers only trials whose estimator actually ran.
    const std::size_t effective = stats.passed + stats.failed;
    stats.allowed_failures =
        stats.statistical ? allowed_failures(effective, options.delta) : 0;
    stats.violated = stats.failed > stats.allowed_failures;

    if (metrics != nullptr) metrics->absorb(harness.session.metrics());
    report.oracles.push_back(std::move(stats));
  }
  return report;
}

Result<TrialResult> replay_repro(const Repro& repro, double epsilon,
                                 double delta) {
  const Oracle* oracle = find_oracle(repro.oracle);
  if (oracle == nullptr) {
    return Status::invalid("repro names unknown oracle: " + repro.oracle);
  }
  auto g = repro_formula(repro);
  if (!g.is_ok()) return g.status();

  ConstraintDatabase db;
  register_generator_vars(&db.vars(), repro.dimension);
  Session session(&db);
  CheckContext ctx;
  ctx.db = &db;
  ctx.session = &session;
  ctx.epsilon = epsilon;
  ctx.delta = delta;
  const std::uint64_t trial_seed =
      stream_seed(repro.seed, oracle_stream(oracle->name()));
  return oracle->check(ctx, g.value(), trial_seed, /*inject_fault=*/false);
}

}  // namespace cqa
