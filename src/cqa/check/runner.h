// The check runner: drives N seeded trials per oracle, accounts
// statistical failures against the Theorem-4 delta budget, shrinks
// deterministic failures, and writes replayable .cqa repro files.
//
// Accounting. Deterministic oracles must never fail: one failing trial
// marks the oracle violated. Statistical oracles (Monte-Carlo bar
// coverage) are allowed to fail with probability <= delta per trial, so
// over N trials the runner admits up to
//     allowed(N) = ceil(N*delta + 3*sqrt(N*delta*(1-delta))) + 1
// observed misses (mean + 3 sigma of the Binomial(N, delta) count,
// plus one so a single unlucky miss in a tiny run never trips); more
// than that and the estimator's stated confidence is wrong -- a bug.
//
// Determinism. Trial t of oracle o generates its formula from seed
// base_seed + t and runs with trial_seed stream_seed(base_seed + t,
// hash(o)), so runs are replayable per-oracle and adding an oracle does
// not shift any other oracle's formulas.

#ifndef CQA_CHECK_RUNNER_H_
#define CQA_CHECK_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cqa/check/generator.h"
#include "cqa/check/oracles.h"
#include "cqa/check/repro.h"
#include "cqa/check/shrinker.h"
#include "cqa/runtime/metrics.h"

namespace cqa {

struct CheckOptions {
  std::size_t trials = 200;     // per oracle
  std::uint64_t seed = 1;       // base seed (trial t uses seed + t)
  /// Oracle names to run; empty = all registered oracles.
  std::vector<std::string> oracle_names;
  /// Test-only fault hook: inject a deliberate fault into this oracle's
  /// comparison on every trial, to prove the harness detects, shrinks,
  /// and reports. Empty = no injection.
  std::string fault_oracle;
  /// Directory for .cqa repro files of failing trials ("" = don't write).
  std::string repro_dir;
  /// Stop collecting failures for an oracle after this many (the run
  /// still counts remaining trials for the delta budget).
  std::size_t max_repros_per_oracle = 3;
  bool shrink = true;           // minimize failing formulae
  GenOptions gen;               // base generator knobs (oracles tune())
  double epsilon = 0.1;         // MC accuracy target per trial
  double delta = 0.1;           // MC failure probability per trial
};

/// Per-oracle tallies for one run.
struct OracleStats {
  std::string name;
  bool statistical = false;
  std::size_t trials = 0;
  std::size_t passed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t allowed_failures = 0;  // delta budget (statistical only)
  bool violated = false;             // failures exceed what is allowed
  std::vector<Repro> repros;         // shrunken failing formulae
  std::string first_detail;          // detail of the first failure
};

struct CheckReport {
  std::vector<OracleStats> oracles;

  bool ok() const {
    for (const auto& o : oracles) {
      if (o.violated) return false;
    }
    return true;
  }
};

/// Binomial failure budget for a statistical oracle over `trials`
/// trials at per-trial failure probability `delta`.
std::size_t allowed_failures(std::size_t trials, double delta);

/// Runs every selected oracle for options.trials trials. Per-oracle
/// counters (check.<oracle>.{pass,fail,skip} and the trial latency
/// histogram check.<oracle>.trial) land in `metrics` when non-null,
/// absorbed together with each oracle session's own runtime counters.
CheckReport run_checks(const CheckOptions& options,
                       MetricsRegistry* metrics = nullptr);

/// Replays one .cqa repro file: reruns its oracle on the recorded
/// formula. Returns the trial result (kFail means the repro still
/// reproduces).
Result<TrialResult> replay_repro(const Repro& repro, double epsilon = 0.1,
                                 double delta = 0.1);

}  // namespace cqa

#endif  // CQA_CHECK_RUNNER_H_
