// Seeded random-formula generation for differential and metamorphic
// testing (cqa::check).
//
// The generator produces well-typed FO+LIN / FO+POLY formulae over a
// fixed set of named output variables v0..v{k-1} (plus quantified
// variables q0..q{m-1}), with tunable connective depth, atom count,
// quantifier count, and coefficient magnitude. Every generated formula
// is conjoined with the unit box over the output variables, so exact
// volume, VOL_I Monte-Carlo, and hit-and-run all measure the same
// bounded set and can be compared directly.
//
// Generation is a pure function of (options, seed): the same pair
// always yields the same formula, which is what makes failing trials
// replayable from a .cqa repro file.

#ifndef CQA_CHECK_GENERATOR_H_
#define CQA_CHECK_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cqa/logic/formula.h"
#include "cqa/logic/parser.h"

namespace cqa {

/// Knobs for one generated formula.
struct GenOptions {
  std::size_t dimension = 2;     // output (volume) variables v0..v{k-1}
  std::size_t max_depth = 3;     // boolean connective depth of the core
  std::size_t max_atoms = 6;     // atom budget for the core
  std::size_t quantifiers = 0;   // prenex quantified variables q0..q{m-1}
  int coeff_magnitude = 4;       // |numerator| bound; denominators 1..4
  bool linear_only = true;       // affine atoms (FO+LIN); else degree <= 2
  bool convex_only = false;      // conjunction of halfspaces, no NOT/OR
  bool allow_eq_atoms = false;   // admit = and != (measure-zero slices)
  /// Each atom mentions at most one quantified variable, keeping the
  /// formula inside decide()'s separable fragment (QE has no such
  /// restriction, which is exactly what the membership oracle checks).
  bool separable_quantifiers = true;
};

/// One generated formula plus everything an oracle needs to run it.
struct GeneratedFormula {
  FormulaPtr core;    // the random part; free vars are 0..dimension-1
  FormulaPtr box;     // 0 <= v_i <= 1 for each output variable
  FormulaPtr boxed;   // core AND box (what volume oracles measure)
  std::size_t dimension = 0;
  std::vector<std::string> output_vars;  // "v0".."v{k-1}"
  std::uint64_t seed = 0;                // the seed that produced it

  /// Printed boxed formula in the parser's syntax (variables named
  /// v0..v{k-1}, q0..; parses back to the same denotation).
  std::string text() const;
  /// Printed core only (what .cqa repro files store).
  std::string core_text() const;
};

/// Size measure used by the shrinker and the repro acceptance check:
/// formula nodes plus polynomial terms of every atom.
std::size_t node_count(const FormulaPtr& f);

/// Prints any formula in the generator's variable naming (v0..v{k-1},
/// q0..; other indices fall back to the printer's x<i> names, which
/// still round-trip through the parser).
std::string print_generated(const FormulaPtr& f, std::size_t dimension);

/// The unit box 0 <= v_i <= 1 over variables 0..dimension-1.
FormulaPtr unit_box(std::size_t dimension);

/// Registers the generator's names (v0..v{k-1} then q0..q7) into `vars`
/// in index order. Run this on any VarTable that will parse generated
/// text: boolean simplification can collapse a formula to `true`/
/// `false`, whose printed form mentions no variables -- without
/// pre-registration the output variables would then be unknown to the
/// database.
void register_generator_vars(VarTable* vars, std::size_t dimension);

/// Rebuilds the derived fields (box, boxed, output_vars) of a formula
/// whose `core`, `dimension`, and `seed` are set. Used by the shrinker
/// and the repro reader.
GeneratedFormula with_core(FormulaPtr core, std::size_t dimension,
                           std::uint64_t seed);

/// Deterministic generator: generate(seed) is a pure function.
class FormulaGen {
 public:
  explicit FormulaGen(const GenOptions& options) : options_(options) {}

  GeneratedFormula generate(std::uint64_t seed) const;

  const GenOptions& options() const { return options_; }

 private:
  GenOptions options_;
};

}  // namespace cqa

#endif  // CQA_CHECK_GENERATOR_H_
