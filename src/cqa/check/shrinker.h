// Greedy formula shrinking: minimize a failing formula before reporting.
//
// Given a formula that makes an oracle fail, the shrinker repeatedly
// tries local simplifications -- replacing a subformula with true/false,
// deleting a conjunct/disjunct, instantiating a quantifier at 1/2,
// dropping a polynomial term from an atom -- and keeps any strictly
// smaller (by node_count) variant that still fails. The result is the
// fixpoint: no single simplification both shrinks it and preserves the
// failure. Shrinking is deterministic given a deterministic predicate.

#ifndef CQA_CHECK_SHRINKER_H_
#define CQA_CHECK_SHRINKER_H_

#include <functional>

#include "cqa/check/generator.h"

namespace cqa {

/// Returns true when the candidate still makes the oracle fail. The
/// predicate must treat oracle errors (e.g. a candidate the engine
/// rejects) as "does not fail", so shrinking never escapes into
/// formulas that cannot reproduce the report.
using StillFails = std::function<bool(const GeneratedFormula&)>;

/// Greedily shrinks `failing` under the predicate. `max_steps` bounds
/// the number of predicate evaluations. The result's node_count is <=
/// the input's, and the result still satisfies the predicate (the input
/// itself is returned when nothing smaller fails).
GeneratedFormula shrink(const GeneratedFormula& failing,
                        const StillFails& still_fails,
                        std::size_t max_steps = 400);

}  // namespace cqa

#endif  // CQA_CHECK_SHRINKER_H_
