#include "cqa/check/generator.h"

#include "cqa/approx/random.h"
#include "cqa/logic/printer.h"

namespace cqa {

namespace {

// Distinct stream tag so generator draws never collide with the
// samplers' stream_seed(seed, chunk) streams.
constexpr std::uint64_t kGenStream = 0x47454E4552415445ull;  // "GENERATE"

VarTable named_vars(std::size_t dimension, std::size_t quantifiers) {
  VarTable vars;
  for (std::size_t i = 0; i < dimension; ++i) {
    vars.index_of("v" + std::to_string(i));
  }
  for (std::size_t i = 0; i < quantifiers; ++i) {
    vars.index_of("q" + std::to_string(i));
  }
  return vars;
}

constexpr std::size_t kMaxQuantifierNames = 8;

class Gen {
 public:
  Gen(const GenOptions& options, std::uint64_t seed)
      : options_(options), rng_(stream_seed(seed, kGenStream)) {}

  FormulaPtr core() {
    atoms_left_ = options_.max_atoms;
    FormulaPtr f = options_.convex_only
                       ? convex_core()
                       : tree(options_.max_depth);
    for (std::size_t i = options_.quantifiers; i-- > 0;) {
      const std::size_t var = options_.dimension + i;
      // Mostly exists: forall over R of a random matrix of atoms is
      // almost always false, which would starve the volume oracles.
      f = pick(5) == 0 ? Formula::forall(var, f) : Formula::exists(var, f);
    }
    return f;
  }

 private:
  std::size_t pick(std::size_t n) { return rng_.next() % n; }

  Rational coeff() {
    const int mag = options_.coeff_magnitude;
    int num = static_cast<int>(pick(2 * mag + 1)) - mag;
    if (num == 0) num = 1;
    const int den = 1 + static_cast<int>(pick(4));
    return Rational(num, den);
  }

  // An affine (or degree-2 when allowed) polynomial over 1..3 variables,
  // at most one of them quantified when separable_quantifiers is set.
  Polynomial poly() {
    const std::size_t k = options_.dimension;
    const std::size_t m = options_.quantifiers;
    std::size_t nvars = 1 + pick(3);
    Polynomial p = Polynomial::constant(coeff());
    bool used_quantified = false;
    for (std::size_t i = 0; i < nvars; ++i) {
      std::size_t v;
      if (m > 0 && !(options_.separable_quantifiers && used_quantified) &&
          pick(3) == 0) {
        v = k + pick(m);
        used_quantified = true;
      } else {
        v = pick(k);
      }
      Polynomial term = Polynomial::variable(v);
      if (!options_.linear_only && pick(4) == 0) {
        term = term * term;  // degree-2 term
      }
      p += term * coeff();
    }
    return p;
  }

  RelOp op() {
    if (options_.allow_eq_atoms && pick(8) == 0) {
      return pick(2) == 0 ? RelOp::kEq : RelOp::kNe;
    }
    switch (pick(4)) {
      case 0: return RelOp::kLt;
      case 1: return RelOp::kLe;
      case 2: return RelOp::kGt;
      default: return RelOp::kGe;
    }
  }

  FormulaPtr atom() {
    if (atoms_left_ == 0) return pick(2) == 0 ? Formula::make_true()
                                              : Formula::make_false();
    --atoms_left_;
    return Formula::atom(poly(), op());
  }

  FormulaPtr tree(std::size_t depth) {
    if (depth == 0 || atoms_left_ <= 1 || pick(4) == 0) return atom();
    const std::size_t shape = pick(8);
    if (shape == 0) return Formula::f_not(tree(depth - 1));
    std::vector<FormulaPtr> parts;
    const std::size_t fanout = 2 + pick(2);
    for (std::size_t i = 0; i < fanout; ++i) {
      parts.push_back(tree(depth - 1));
    }
    return shape < 4 ? Formula::f_or(std::move(parts))
                     : Formula::f_and(std::move(parts));
  }

  // Convex mode: a conjunction of halfspaces over the output variables
  // (hit-and-run needs a single convex cell).
  FormulaPtr convex_core() {
    std::vector<FormulaPtr> parts;
    const std::size_t n = 2 + pick(options_.max_atoms > 2
                                       ? options_.max_atoms - 1
                                       : 1);
    for (std::size_t i = 0; i < n; ++i) {
      Polynomial p = Polynomial::constant(coeff());
      for (std::size_t v = 0; v < options_.dimension; ++v) {
        if (pick(3) != 0) p += Polynomial::variable(v) * coeff();
      }
      parts.push_back(Formula::atom(p, pick(2) == 0 ? RelOp::kLe
                                                    : RelOp::kGe));
    }
    return Formula::f_and(std::move(parts));
  }

  GenOptions options_;
  Xoshiro rng_;
  std::size_t atoms_left_ = 0;
};

}  // namespace

std::string GeneratedFormula::text() const {
  return print_generated(boxed, dimension);
}

std::string GeneratedFormula::core_text() const {
  return print_generated(core, dimension);
}

std::string print_generated(const FormulaPtr& f, std::size_t dimension) {
  VarTable vars = named_vars(dimension, kMaxQuantifierNames);
  return to_string(f, vars);
}

void register_generator_vars(VarTable* vars, std::size_t dimension) {
  for (std::size_t i = 0; i < dimension; ++i) {
    vars->index_of("v" + std::to_string(i));
  }
  for (std::size_t i = 0; i < kMaxQuantifierNames; ++i) {
    vars->index_of("q" + std::to_string(i));
  }
}

std::size_t node_count(const FormulaPtr& f) {
  if (f == nullptr) return 0;
  std::size_t n = 1;
  if (f->kind() == Formula::Kind::kAtom) n += f->poly().num_terms();
  for (const auto& child : f->children()) n += node_count(child);
  return n;
}

FormulaPtr unit_box(std::size_t dimension) {
  std::vector<FormulaPtr> parts;
  for (std::size_t i = 0; i < dimension; ++i) {
    Polynomial v = Polynomial::variable(i);
    parts.push_back(Formula::atom(v * Rational(-1), RelOp::kLe));  // v >= 0
    parts.push_back(
        Formula::atom(v - Polynomial::constant(Rational(1)), RelOp::kLe));
  }
  return Formula::f_and(std::move(parts));
}

GeneratedFormula with_core(FormulaPtr core, std::size_t dimension,
                           std::uint64_t seed) {
  GeneratedFormula g;
  g.core = std::move(core);
  g.box = unit_box(dimension);
  g.boxed = Formula::f_and(g.core, g.box);
  g.dimension = dimension;
  g.seed = seed;
  for (std::size_t i = 0; i < dimension; ++i) {
    g.output_vars.push_back("v" + std::to_string(i));
  }
  return g;
}

GeneratedFormula FormulaGen::generate(std::uint64_t seed) const {
  Gen gen(options_, seed);
  return with_core(gen.core(), options_.dimension, seed);
}

}  // namespace cqa
