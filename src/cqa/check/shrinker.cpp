#include "cqa/check/shrinker.h"

#include "cqa/logic/transform.h"

namespace cqa {

namespace {

// All single-edit simplifications of `f`, bigger cuts first (whole
// subtrees to constants before leaf tweaks), appended to *out.
void variants(const FormulaPtr& f, std::vector<FormulaPtr>* out) {
  const Formula::Kind kind = f->kind();
  if (kind == Formula::Kind::kTrue || kind == Formula::Kind::kFalse) return;

  out->push_back(Formula::make_true());
  out->push_back(Formula::make_false());

  switch (kind) {
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      const auto& children = f->children();
      const bool is_and = kind == Formula::Kind::kAnd;
      // Delete one child.
      for (std::size_t i = 0; i < children.size(); ++i) {
        std::vector<FormulaPtr> rest;
        for (std::size_t j = 0; j < children.size(); ++j) {
          if (j != i) rest.push_back(children[j]);
        }
        out->push_back(is_and ? Formula::f_and(std::move(rest))
                              : Formula::f_or(std::move(rest)));
      }
      // Recurse into one child.
      for (std::size_t i = 0; i < children.size(); ++i) {
        std::vector<FormulaPtr> subs;
        variants(children[i], &subs);
        for (auto& sub : subs) {
          std::vector<FormulaPtr> rebuilt = children;
          rebuilt[i] = std::move(sub);
          out->push_back(is_and ? Formula::f_and(std::move(rebuilt))
                                : Formula::f_or(std::move(rebuilt)));
        }
      }
      break;
    }
    case Formula::Kind::kNot: {
      out->push_back(f->children()[0]);  // drop the negation
      std::vector<FormulaPtr> subs;
      variants(f->children()[0], &subs);
      for (auto& sub : subs) out->push_back(Formula::f_not(std::move(sub)));
      break;
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall: {
      // Instantiate the bound variable at 1/2 (keeps the formula
      // closed over the same free variables).
      out->push_back(
          substitute_var(f->children()[0], f->var(), Rational(1, 2)));
      std::vector<FormulaPtr> subs;
      variants(f->children()[0], &subs);
      for (auto& sub : subs) {
        out->push_back(kind == Formula::Kind::kExists
                           ? Formula::exists(f->var(), std::move(sub),
                                             f->active_domain())
                           : Formula::forall(f->var(), std::move(sub),
                                             f->active_domain()));
      }
      break;
    }
    case Formula::Kind::kAtom: {
      // Drop one polynomial term.
      if (f->poly().num_terms() > 1) {
        for (const auto& [mono, c] : f->poly().terms()) {
          Polynomial dropped =
              f->poly() - Polynomial::from_terms({{mono, c}});
          out->push_back(Formula::atom(std::move(dropped), f->op()));
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

GeneratedFormula shrink(const GeneratedFormula& failing,
                        const StillFails& still_fails,
                        std::size_t max_steps) {
  GeneratedFormula best = failing;
  std::size_t steps = 0;
  bool improved = true;
  while (improved && steps < max_steps) {
    improved = false;
    std::vector<FormulaPtr> candidates;
    variants(best.core, &candidates);
    const std::size_t size = node_count(best.core);
    for (auto& candidate : candidates) {
      if (steps >= max_steps) break;
      if (node_count(candidate) >= size) continue;
      GeneratedFormula next =
          with_core(std::move(candidate), best.dimension, best.seed);
      ++steps;
      if (still_fails(next)) {
        best = std::move(next);
        improved = true;
        break;  // greedy: restart from the smaller formula
      }
    }
  }
  return best;
}

}  // namespace cqa
