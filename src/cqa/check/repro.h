// Replayable repro files for failing check trials.
//
// A .cqa file is a small line-oriented text record:
//
//   # cqa repro v1
//   oracle: exact_vs_mc
//   seed: 42
//   dimension: 2
//   formula: E q0. 2*v0 - q0 <= 1/2 & v1 >= 0
//   detail: exact 1/4 outside MC bars [0.31, 0.41]
//
// `formula` is the printed *core* (the unit box is reattached on load),
// `seed` re-seeds the oracle's own randomness (sample points, MC
// streams), so a replay runs the identical trial that failed.

#ifndef CQA_CHECK_REPRO_H_
#define CQA_CHECK_REPRO_H_

#include <cstdint>
#include <string>

#include "cqa/check/generator.h"

namespace cqa {

struct Repro {
  std::string oracle;
  std::uint64_t seed = 0;
  std::size_t dimension = 0;
  std::string formula;  // printed core, single line
  std::string detail;   // human-readable failure description
};

/// Serializes to the .cqa text format.
std::string repro_to_text(const Repro& repro);

/// Parses the .cqa text format (unknown keys are ignored; missing
/// oracle/formula/dimension are errors).
Result<Repro> repro_from_text(const std::string& text);

/// Reconstructs the generated-formula record a replay runs: parses the
/// stored core with variables v0..v{k-1}, q0.. pre-registered so
/// indices match the generator's, then reattaches the unit box.
Result<GeneratedFormula> repro_formula(const Repro& repro);

Status write_repro_file(const Repro& repro, const std::string& path);
Result<Repro> read_repro_file(const std::string& path);

}  // namespace cqa

#endif  // CQA_CHECK_REPRO_H_
