#include "cqa/check/repro.h"

#include <cstdio>
#include <sstream>

namespace cqa {

std::string repro_to_text(const Repro& repro) {
  std::ostringstream out;
  out << "# cqa repro v1\n";
  out << "oracle: " << repro.oracle << "\n";
  out << "seed: " << repro.seed << "\n";
  out << "dimension: " << repro.dimension << "\n";
  out << "formula: " << repro.formula << "\n";
  if (!repro.detail.empty()) out << "detail: " << repro.detail << "\n";
  return out.str();
}

Result<Repro> repro_from_text(const std::string& text) {
  Repro repro;
  bool have_oracle = false, have_formula = false, have_dimension = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto colon = line.find(": ");
    if (colon == std::string::npos) continue;
    const std::string key = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);
    if (key == "oracle") {
      repro.oracle = value;
      have_oracle = true;
    } else if (key == "seed") {
      try {
        repro.seed = std::stoull(value);
      } catch (...) {
        return Status::invalid("repro: bad seed: " + value);
      }
    } else if (key == "dimension") {
      try {
        repro.dimension = std::stoul(value);
      } catch (...) {
        return Status::invalid("repro: bad dimension: " + value);
      }
      if (repro.dimension == 0 || repro.dimension > 8) {
        return Status::invalid("repro: dimension out of range: " + value);
      }
      have_dimension = true;
    } else if (key == "formula") {
      repro.formula = value;
      have_formula = true;
    } else if (key == "detail") {
      repro.detail = value;
    }
  }
  if (!have_oracle) return Status::invalid("repro: missing oracle");
  if (!have_dimension) return Status::invalid("repro: missing dimension");
  if (!have_formula) return Status::invalid("repro: missing formula");
  return repro;
}

Result<GeneratedFormula> repro_formula(const Repro& repro) {
  // Pre-register v0..v{k-1} then q0..q7 so names map onto the same
  // indices the generator (and printer) use.
  VarTable vars;
  register_generator_vars(&vars, repro.dimension);
  auto core = parse_formula(repro.formula, &vars);
  if (!core.is_ok()) return core.status();
  return with_core(core.value(), repro.dimension, repro.seed);
}

Status write_repro_file(const Repro& repro, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::internal("cannot open repro file for writing: " + path);
  }
  const std::string text = repro_to_text(repro);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::internal("short write to repro file: " + path);
  }
  return Status::ok();
}

Result<Repro> read_repro_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::invalid("cannot open repro file: " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return repro_from_text(text);
}

}  // namespace cqa
