#include "cqa/check/chaos.h"

#include <exception>
#include <memory>

#include "cqa/approx/random.h"
#include "cqa/check/runner.h"

namespace cqa {

namespace {

// Distinct stream tag so chaos trial randomness never collides with the
// plain runner's per-oracle streams on the same base seed.
constexpr std::uint64_t kChaosStream = 0xc4a05c4a05ULL;

// A kFail whose detail carries a typed engine status is a *loud*
// failure: the fault surfaced as an error the caller can act on, not as
// a silently wrong value. kOk is deliberately absent.
bool typed_error_detail(const std::string& detail) {
  static const char* kMarkers[] = {
      "Cancelled:",      "DeadlineExceeded:", "ResourceExhausted:",
      "Internal:",       "InvalidArgument:",  "Unsupported:",
      "NotImplemented:", "OutOfRange:",
  };
  for (const char* m : kMarkers) {
    if (detail.find(m) != std::string::npos) return true;
  }
  return false;
}

struct ChaosHarness {
  const Oracle* oracle;
  GenOptions gen_options;
  std::unique_ptr<FormulaGen> gen;
  ConstraintDatabase db;
  Session session;
  CheckContext ctx;

  ChaosHarness(const Oracle* o, const ChaosOptions& options)
      : oracle(o), gen_options(o->tune(options.gen)), session(&db) {
    gen = std::make_unique<FormulaGen>(gen_options);
    register_generator_vars(&db.vars(), gen_options.dimension);
    ctx.db = &db;
    ctx.session = &session;
    ctx.epsilon = options.epsilon;
    ctx.delta = options.delta;
  }
};

}  // namespace

ChaosReport run_chaos(const ChaosOptions& options,
                      MetricsRegistry* metrics) {
  std::vector<const Oracle*> selected;
  if (options.oracle_names.empty()) {
    selected = all_oracles();
  } else {
    for (const auto& name : options.oracle_names) {
      const Oracle* oracle = find_oracle(name);
      if (oracle != nullptr) selected.push_back(oracle);
    }
  }

  ChaosReport report;
  if (selected.empty()) return report;

  // Sessions (and their caches) are shared across an oracle's trials on
  // purpose: a cache entry poisoned in trial t must be *detected* when
  // trial t+k reads it with the injector long gone -- exactly the
  // always-on checksum contract chaos exists to exercise.
  std::vector<std::unique_ptr<ChaosHarness>> harnesses;
  harnesses.reserve(selected.size());
  for (const Oracle* oracle : selected) {
    harnesses.push_back(std::make_unique<ChaosHarness>(oracle, options));
  }

  std::size_t stat_effective = 0;  // statistical trials that ran (pass+fail)

  for (std::size_t t = 0; t < options.trials; ++t) {
    ChaosHarness& h = *harnesses[t % harnesses.size()];
    const std::uint64_t formula_seed = options.seed + t;
    const GeneratedFormula g = h.gen->generate(formula_seed);
    const std::uint64_t trial_seed = stream_seed(formula_seed, kChaosStream);
    const guard::FaultPlan plan =
        guard::FaultPlan::random(stream_seed(formula_seed, ~kChaosStream));

    guard::FaultInjector injector(plan);
    TrialResult result;
    bool threw = false;
    std::string thrown_what;
    {
      guard::ScopedFaultInjector scope(&injector);
      try {
        result = h.oracle->check(h.ctx, g, trial_seed,
                                 /*inject_fault=*/false);
      } catch (const std::exception& e) {
        // Some oracles drive engines directly (no Session wrapper), so
        // an injected bad_alloc can escape; caught here, it is still a
        // loud failure -- provided a fault actually fired.
        threw = true;
        thrown_what = e.what();
      } catch (...) {
        threw = true;
        thrown_what = "non-std exception";
      }
    }
    // Every oracle joins its engine work (parallel_for participates and
    // waits) before returning, so the fire counts are final here.
    const std::uint64_t fired = injector.fired_total();
    report.faults_injected += fired;
    for (std::size_t i = 0; i < guard::kNumFaultSites; ++i) {
      report.faults_by_site[i] +=
          injector.fired(static_cast<guard::FaultSite>(i));
    }
    ++report.trials;

    if (threw) {
      if (fired > 0) {
        ++report.contained;
      } else {
        report.violations.push_back({h.oracle->name(), formula_seed,
                                     guard::plan_to_string(plan),
                                     "exception with no fault fired: " +
                                         thrown_what});
      }
      continue;
    }

    switch (result.status) {
      case TrialStatus::kPass:
        ++report.passed;
        if (h.oracle->statistical()) ++stat_effective;
        break;
      case TrialStatus::kSkip:
        ++report.skipped;
        break;
      case TrialStatus::kFail:
        if (fired > 0 && typed_error_detail(result.detail)) {
          ++report.contained;
        } else if (h.oracle->statistical()) {
          ++report.stat_misses;
          ++stat_effective;
        } else {
          // A wrong value, or a failure no fault can explain: the one
          // outcome chaos exists to catch.
          report.violations.push_back({h.oracle->name(), formula_seed,
                                       guard::plan_to_string(plan),
                                       result.detail});
        }
        break;
    }
  }

  report.allowed_stat_misses = allowed_failures(stat_effective, options.delta);

  if (metrics != nullptr) {
    metrics->counter("guard_fault_injected_total")
        ->inc(report.faults_injected);
    for (std::size_t i = 0; i < guard::kNumFaultSites; ++i) {
      metrics
          ->counter(std::string("guard_fault_injected_") +
                    guard::fault_site_name(
                        static_cast<guard::FaultSite>(i)) +
                    "_total")
          ->inc(report.faults_by_site[i]);
    }
    for (auto& h : harnesses) {
      metrics->absorb(h->session.metrics());
    }
  }
  return report;
}

}  // namespace cqa
