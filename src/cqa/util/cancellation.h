// Cooperative cancellation for long-running engine calls.
//
// A CancelToken combines an explicit cancel flag with an optional
// wall-clock deadline. Engines receive `const CancelToken*` (nullptr =
// never cancelled) and poll expired()/check() at loop boundaries --
// chunk starts in the Monte-Carlo samplers, section evaluations in the
// exact sweep -- so cancellation latency is bounded by one unit of work,
// never by the whole computation.
//
// expired() reads the steady clock when a deadline is set; callers on
// genuinely hot inner loops should poll every N iterations rather than
// every iteration.

#ifndef CQA_UTIL_CANCELLATION_H_
#define CQA_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "cqa/util/status.h"

namespace cqa {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation (thread-safe; any thread may call).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a deadline `ms` milliseconds from now. ms < 0 disarms.
  /// Thread-safe like cancel(): the deadline is a single atomic, so it
  /// may be (re)armed even while workers already poll the token.
  void set_deadline_after_ms(std::int64_t ms) {
    if (ms < 0) {
      deadline_ns_.store(kNoDeadlineNs, std::memory_order_relaxed);
      return;
    }
    const std::int64_t now = now_ns();
    const std::int64_t span =
        ms > (kNoDeadlineNs - 1 - now) / 1'000'000
            ? kNoDeadlineNs - 1 - now  // saturate: effectively never
            : ms * 1'000'000;
    deadline_ns_.store(now + span, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadlineNs;
  }

  /// True once cancelled or past the deadline.
  bool expired() const {
    if (cancelled()) return true;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != kNoDeadlineNs && now_ns() >= d;
  }

  /// OK while live; kCancelled / kDeadlineExceeded once expired.
  Status check() const {
    if (cancelled()) return Status::cancelled("operation cancelled");
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != kNoDeadlineNs && now_ns() >= d) {
      return Status::deadline_exceeded("deadline exceeded");
    }
    return Status::ok();
  }

  /// Milliseconds until the deadline (clamped at 0); a large sentinel
  /// when no deadline is armed.
  std::int64_t remaining_ms() const {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadlineNs) return kNoDeadlineMs;
    const std::int64_t left = (d - now_ns()) / 1'000'000;
    return left < 0 ? 0 : left;
  }

  static constexpr std::int64_t kNoDeadlineMs = INT64_MAX;

 private:
  // Deadline as steady-clock nanos since epoch; kNoDeadlineNs = unarmed.
  static constexpr std::int64_t kNoDeadlineNs = INT64_MAX;

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadlineNs};
};

/// Shorthand for the "nullptr token never fires" convention.
inline bool token_expired(const CancelToken* t) {
  return t != nullptr && t->expired();
}

}  // namespace cqa

#endif  // CQA_UTIL_CANCELLATION_H_
