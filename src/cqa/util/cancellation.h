// Cooperative cancellation for long-running engine calls.
//
// A CancelToken combines an explicit cancel flag with an optional
// wall-clock deadline. Engines receive `const CancelToken*` (nullptr =
// never cancelled) and poll expired()/check() at loop boundaries --
// chunk starts in the Monte-Carlo samplers, section evaluations in the
// exact sweep -- so cancellation latency is bounded by one unit of work,
// never by the whole computation.
//
// expired() reads the steady clock when a deadline is set; callers on
// genuinely hot inner loops should poll every N iterations rather than
// every iteration.

#ifndef CQA_UTIL_CANCELLATION_H_
#define CQA_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "cqa/util/status.h"

namespace cqa {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation (thread-safe; any thread may call).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a deadline `ms` milliseconds from now. ms < 0 disarms.
  void set_deadline_after_ms(std::int64_t ms) {
    if (ms < 0) {
      has_deadline_ = false;
      return;
    }
    deadline_ = Clock::now() + std::chrono::milliseconds(ms);
    has_deadline_ = true;
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const { return has_deadline_; }

  /// True once cancelled or past the deadline.
  bool expired() const {
    if (cancelled()) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// OK while live; kCancelled / kDeadlineExceeded once expired.
  Status check() const {
    if (cancelled()) return Status::cancelled("operation cancelled");
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Status::deadline_exceeded("deadline exceeded");
    }
    return Status::ok();
  }

  /// Milliseconds until the deadline (clamped at 0); a large sentinel
  /// when no deadline is armed.
  std::int64_t remaining_ms() const {
    if (!has_deadline_) return kNoDeadlineMs;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline_ - Clock::now())
                    .count();
    return left < 0 ? 0 : left;
  }

  static constexpr std::int64_t kNoDeadlineMs = INT64_MAX;

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

/// Shorthand for the "nullptr token never fires" convention.
inline bool token_expired(const CancelToken* t) {
  return t != nullptr && t->expired();
}

}  // namespace cqa

#endif  // CQA_UTIL_CANCELLATION_H_
