// Fixed-width little-endian binary encoding helpers, shared by the
// serve-layer request fingerprint and the cqa::served wire protocol.
//
// Everything is byte-exact and platform-stable: integers are emitted as
// fixed-width little-endian regardless of host endianness or the width
// of size_t, doubles as the little-endian bytes of their IEEE-754
// bit pattern. Two processes (or two builds) encoding the same value
// produce the same bytes -- the property the cross-process coalescing
// fingerprint and the disk-backed result cache both rely on.

#ifndef CQA_UTIL_BINCODE_H_
#define CQA_UTIL_BINCODE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace cqa {
namespace bincode {

inline void put_u8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void put_u16(std::string* out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_i64(std::string* out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_f64(std::string* out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Length-prefixed (u64 LE) byte string.
inline void put_str(std::string* out, const std::string& s) {
  put_u64(out, static_cast<std::uint64_t>(s.size()));
  out->append(s);
}

/// Cursor-based reader over an encoded buffer. Every get_* returns
/// false (leaving the output untouched) once the buffer is exhausted or
/// a length prefix overruns it, so decoders degrade to a clean error
/// instead of reading out of bounds.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::string& buf)
      : Reader(buf.data(), buf.size()) {}

  bool get_u8(std::uint8_t* v) {
    if (pos_ + 1 > size_) return fail();
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool get_u16(std::uint16_t* v) {
    if (pos_ + 2 > size_) return fail();
    std::uint16_t out = 0;
    for (int i = 0; i < 2; ++i) {
      out |= static_cast<std::uint16_t>(
          static_cast<std::uint8_t>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += 2;
    *v = out;
    return true;
  }

  bool get_u32(std::uint32_t* v) {
    if (pos_ + 4 > size_) return fail();
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool get_u64(std::uint64_t* v) {
    if (pos_ + 8 > size_) return fail();
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool get_i64(std::int64_t* v) {
    std::uint64_t u;
    if (!get_u64(&u)) return false;
    *v = static_cast<std::int64_t>(u);
    return true;
  }

  bool get_f64(double* v) {
    std::uint64_t bits;
    if (!get_u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool get_str(std::string* s) {
    std::uint64_t len;
    if (!get_u64(&len)) return false;
    if (len > size_ - pos_) return fail();
    s->assign(data_ + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

  bool ok() const { return !failed_; }
  bool exhausted() const { return pos_ == size_; }
  std::size_t pos() const { return pos_; }

 private:
  bool fail() {
    failed_ = true;
    return false;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// FNV-1a over a byte string: the stable 64-bit hash used to pick a
/// shard from a fingerprint and to checksum disk-cache entries. `seed`
/// salts the basis so independent uses cannot collide structurally.
inline std::uint64_t fnv1a(const std::string& bytes,
                           std::uint64_t seed = 0) {
  std::uint64_t h = 14695981039346656037ull ^ seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace bincode
}  // namespace cqa

#endif  // CQA_UTIL_BINCODE_H_
