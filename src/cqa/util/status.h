// Status / Result error-handling primitives (Arrow/RocksDB style).
//
// Library code returns cqa::Status or cqa::Result<T> instead of throwing
// across public API boundaries. CQA_DCHECK guards programmer errors.

#ifndef CQA_UTIL_STATUS_H_
#define CQA_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace cqa {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotImplemented,
  kOutOfRange,
  kInternal,
  kUnsupported,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// Lightweight success/error carrier.
///
/// A Status is either OK or holds a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status ok() { return Status(); }
  static Status invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status not_implemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status out_of_range(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status deadline_exceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status resource_exhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(code_name(code_)) + ": " + msg_;
  }

 private:
  static const char* code_name(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic returns.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    if (status_.is_ok()) {
      status_ = Status::internal("Result constructed from OK status");
    }
  }

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value access. Undefined if !is_ok() (guarded by CQA_DCHECK in debug).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& take() && { return std::move(*value_); }

  const T& value_or_die() const {
    if (!is_ok()) {
      std::fprintf(stderr, "cqa: value_or_die on error: %s\n",
                   status_.to_string().c_str());
      std::abort();
    }
    return *value_;
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace cqa

/// Fatal-check macro for invariant violations (always on: exactness bugs
/// must not propagate silently into "exact" answers).
#define CQA_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CQA_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define CQA_DCHECK(cond) CQA_CHECK(cond)

/// Early-return helpers for Status/Result plumbing.
#define CQA_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::cqa::Status _st = (expr);                    \
    if (!_st.is_ok()) return _st;                  \
  } while (0)

#define CQA_ASSIGN_OR_RETURN(lhs, rexpr)           \
  auto _res_##__LINE__ = (rexpr);                  \
  if (!_res_##__LINE__.is_ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).take();

#endif  // CQA_UTIL_STATUS_H_
