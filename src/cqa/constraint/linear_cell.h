// Conjunctive linear cells and the formula <-> cell bridge.
//
// A quantifier-free FO+LIN formula denotes a semi-linear set; in DNF it is
// a finite union of cells, each a conjunction of normalized linear
// constraints. Cells are what the geometry and volume engines consume.

#ifndef CQA_CONSTRAINT_LINEAR_CELL_H_
#define CQA_CONSTRAINT_LINEAR_CELL_H_

#include <optional>
#include <string>
#include <vector>

#include "cqa/constraint/fourier_motzkin.h"
#include "cqa/constraint/linear_atom.h"

namespace cqa {

/// A conjunction of linear constraints in R^dim.
class LinearCell {
 public:
  explicit LinearCell(std::size_t dim) : dim_(dim) {}
  LinearCell(std::size_t dim, std::vector<LinearConstraint> cs)
      : dim_(dim), constraints_(std::move(cs)) {
    for (auto& c : constraints_) pad(&c);
  }

  std::size_t dim() const { return dim_; }
  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }

  void add(LinearConstraint c) {
    pad(&c);
    constraints_.push_back(std::move(c));
  }

  /// Exact emptiness test.
  bool is_feasible() const { return fm_feasible(constraints_, dim_); }

  /// A point satisfying every constraint (strictly for strict ones).
  std::optional<RVec> sample_point() const {
    return fm_sample_point(constraints_, dim_);
  }

  bool contains(const RVec& point) const {
    for (const auto& c : constraints_) {
      if (!c.satisfied_by(point)) return false;
    }
    return true;
  }

  /// Conjunction of the constraint atoms.
  FormulaPtr to_formula() const;

  /// The cell with every strict inequality relaxed (same measure).
  LinearCell closure() const;

  /// Fixes x_var := value: substitutes into every constraint. The result
  /// lives in the same ambient dimension with x_var unconstrained-free
  /// (its coefficient is zero everywhere).
  LinearCell restrict_var(std::size_t var, const Rational& value) const;

  /// Intersection with [lo, hi] on every coordinate.
  LinearCell intersect_box(const Rational& lo, const Rational& hi) const;

  /// Tight interval of x_var over the cell (exact projection).
  AxisInterval project_to_axis(std::size_t var) const {
    return fm_project_to_axis(constraints_, var, dim_);
  }

  /// True iff the cell is bounded in every coordinate.
  bool is_bounded() const;

  std::string to_string() const;

 private:
  void pad(LinearConstraint* c) const {
    CQA_CHECK(c->coeffs.size() <= dim_);
    c->coeffs.resize(dim_, Rational());
  }

  std::size_t dim_;
  std::vector<LinearConstraint> constraints_;
};

/// Converts a quantifier-free, predicate-free, linear formula into a list
/// of feasible cells whose union is the formula's denotation. Disequality
/// literals split cells in two; infeasible cells are dropped.
Result<std::vector<LinearCell>> formula_to_cells(const FormulaPtr& f,
                                                 std::size_t dim);

/// Union-of-cells back to a formula.
FormulaPtr cells_to_formula(const std::vector<LinearCell>& cells);

}  // namespace cqa

#endif  // CQA_CONSTRAINT_LINEAR_CELL_H_
