// Exact Fourier-Motzkin elimination over the rationals.
//
// The closure engine of FO+LIN: projecting a conjunction of linear
// constraints along a variable yields a conjunction of linear constraints,
// which is exactly why the constraint model is closed under FO queries.
// Strictness propagates (strict combined with anything is strict);
// equalities are used as Gaussian pivots before inequality combination.

#ifndef CQA_CONSTRAINT_FOURIER_MOTZKIN_H_
#define CQA_CONSTRAINT_FOURIER_MOTZKIN_H_

#include <optional>
#include <vector>

#include "cqa/constraint/linear_atom.h"
#include "cqa/guard/meter.h"

namespace cqa {

/// Eliminates variable `var` from the conjunction: the result holds for
/// (x_0..x_{n-1} without x_var) iff some value of x_var satisfies the
/// input. Coefficients of `var` in the output are all zero (the slot
/// remains in the vectors so indices stay stable).
///
/// `meter` (nullptr = unmetered) charges one fm_rows high-water unit per
/// produced row; once the quota trips the pair-combination loop stops
/// and the (truncated, no longer equivalent) system is returned -- the
/// caller MUST poll meter->tripped() and discard the result. The quota
/// is what bounds the quadratic lowers-x-uppers blowup.
std::vector<LinearConstraint> fm_eliminate(
    const std::vector<LinearConstraint>& cs, std::size_t var,
    guard::WorkMeter* meter = nullptr);

/// Removes syntactic duplicates and pairwise-dominated rows.
std::vector<LinearConstraint> fm_simplify(
    const std::vector<LinearConstraint>& cs);

/// Exact feasibility of a conjunction over R^dim (strict-aware).
bool fm_feasible(const std::vector<LinearConstraint>& cs, std::size_t dim);

/// A satisfying point if one exists (strict-aware: the point strictly
/// satisfies every strict constraint).
std::optional<RVec> fm_sample_point(const std::vector<LinearConstraint>& cs,
                                    std::size_t dim);

/// The tight lower/upper bounds the conjunction induces on variable `var`
/// once every other variable has been eliminated: the projection of the
/// solution set onto the var-axis, described as an interval.
struct AxisInterval {
  /// Unbounded below / above when the optionals are empty.
  std::optional<Rational> lo, hi;
  bool lo_strict = false, hi_strict = false;
  /// Whether the projection is empty.
  bool empty = false;
};
AxisInterval fm_project_to_axis(const std::vector<LinearConstraint>& cs,
                                std::size_t var, std::size_t dim);

}  // namespace cqa

#endif  // CQA_CONSTRAINT_FOURIER_MOTZKIN_H_
