#include "cqa/constraint/qe.h"

#include <algorithm>

#include "cqa/logic/transform.h"

namespace cqa {

namespace {

using Kind = Formula::Kind;

// Rough resident-footprint estimate of one constraint row: dim + 1
// rationals, each two small BigInts plus bookkeeping.
std::size_t row_bytes(std::size_t dim) { return 48 * (dim + 1); }

Result<FormulaPtr> qe_rec(const FormulaPtr& f, guard::WorkMeter* meter) {
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
      return f;
    case Kind::kPredicate:
      return Status::invalid("qe_linear: schema predicate " + f->pred_name() +
                             " (substitute the database first)");
    case Kind::kNot: {
      auto sub = qe_rec(f->children()[0], meter);
      if (!sub.is_ok()) return sub;
      return Formula::f_not(sub.value());
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaPtr> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) {
        auto sub = qe_rec(c, meter);
        if (!sub.is_ok()) return sub;
        kids.push_back(sub.value());
      }
      return f->kind() == Kind::kAnd ? Formula::f_and(std::move(kids))
                                     : Formula::f_or(std::move(kids));
    }
    case Kind::kExists: {
      if (f->active_domain()) {
        return Status::invalid(
            "qe_linear: active-domain quantifier outside a database context");
      }
      auto body = qe_rec(f->children()[0], meter);
      if (!body.is_ok()) return body;
      const std::size_t var = f->var();
      const std::size_t dim = static_cast<std::size_t>(
          std::max(body.value()->max_var(), static_cast<int>(var))) + 1;
      auto cells = formula_to_cells(body.value(), dim);
      if (!cells.is_ok()) return cells.status();
      // The DNF expansion plus per-cell FM is where Karpinski-Macintyre
      // blowup materializes: charge every atom the cell list holds, then
      // meter each elimination and bail at the first trip instead of
      // building the next 10^9 atoms.
      if (meter != nullptr) {
        std::size_t atoms = 0;
        for (const auto& cell : cells.value()) {
          atoms += cell.constraints().size();
        }
        meter->charge_qe_atoms(atoms);
        meter->charge_resident_bytes(atoms * row_bytes(dim));
        CQA_RETURN_IF_ERROR(meter->check());
      }
      std::vector<LinearCell> projected;
      for (const auto& cell : cells.value()) {
        auto rows = fm_eliminate(cell.constraints(), var, meter);
        if (meter != nullptr) {
          meter->charge_qe_atoms(rows.size());
          meter->charge_resident_bytes(rows.size() * row_bytes(dim));
          CQA_RETURN_IF_ERROR(meter->check());
        }
        projected.emplace_back(dim, std::move(rows));
      }
      return cells_to_formula(projected);
    }
    case Kind::kForall: {
      if (f->active_domain()) {
        return Status::invalid(
            "qe_linear: active-domain quantifier outside a database context");
      }
      FormulaPtr dual = Formula::f_not(
          Formula::exists(f->var(), Formula::f_not(f->children()[0])));
      return qe_rec(dual, meter);
    }
  }
  CQA_CHECK(false);
  return Status::internal("unreachable");
}

}  // namespace

Result<FormulaPtr> qe_linear(const FormulaPtr& f, guard::WorkMeter* meter) {
  if (!f->is_linear()) {
    return Status::invalid("qe_linear: formula has nonlinear atoms");
  }
  return qe_rec(f, meter);
}

Result<std::vector<LinearCell>> qe_to_cells(const FormulaPtr& f,
                                            std::size_t dim) {
  auto qf = qe_linear(f);
  if (!qf.is_ok()) return qf.status();
  if (qf.value()->max_var() >= static_cast<int>(dim)) {
    // Free variables must fit; bound ones were eliminated.
    for (std::size_t v : qf.value()->free_vars()) {
      if (v >= dim) {
        return Status::invalid("qe_to_cells: free variable x" +
                               std::to_string(v) +
                               " outside ambient dimension");
      }
    }
  }
  return formula_to_cells(qf.value(), dim);
}

Result<bool> qe_decide_sentence(const FormulaPtr& f) {
  auto qf = qe_linear(f);
  if (!qf.is_ok()) return qf.status();
  if (!qf.value()->free_vars().empty()) {
    return Status::invalid("qe_decide_sentence: formula has free variables");
  }
  auto cells = formula_to_cells(qf.value(), 1);
  if (!cells.is_ok()) return cells.status();
  return !cells.value().empty();
}

}  // namespace cqa
