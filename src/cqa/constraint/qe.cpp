#include "cqa/constraint/qe.h"

#include <algorithm>

#include "cqa/logic/transform.h"

namespace cqa {

namespace {

using Kind = Formula::Kind;

Result<FormulaPtr> qe_rec(const FormulaPtr& f) {
  switch (f->kind()) {
    case Kind::kTrue:
    case Kind::kFalse:
    case Kind::kAtom:
      return f;
    case Kind::kPredicate:
      return Status::invalid("qe_linear: schema predicate " + f->pred_name() +
                             " (substitute the database first)");
    case Kind::kNot: {
      auto sub = qe_rec(f->children()[0]);
      if (!sub.is_ok()) return sub;
      return Formula::f_not(sub.value());
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaPtr> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) {
        auto sub = qe_rec(c);
        if (!sub.is_ok()) return sub;
        kids.push_back(sub.value());
      }
      return f->kind() == Kind::kAnd ? Formula::f_and(std::move(kids))
                                     : Formula::f_or(std::move(kids));
    }
    case Kind::kExists: {
      if (f->active_domain()) {
        return Status::invalid(
            "qe_linear: active-domain quantifier outside a database context");
      }
      auto body = qe_rec(f->children()[0]);
      if (!body.is_ok()) return body;
      const std::size_t var = f->var();
      const std::size_t dim = static_cast<std::size_t>(
          std::max(body.value()->max_var(), static_cast<int>(var))) + 1;
      auto cells = formula_to_cells(body.value(), dim);
      if (!cells.is_ok()) return cells.status();
      std::vector<LinearCell> projected;
      for (const auto& cell : cells.value()) {
        projected.emplace_back(dim, fm_eliminate(cell.constraints(), var));
      }
      return cells_to_formula(projected);
    }
    case Kind::kForall: {
      if (f->active_domain()) {
        return Status::invalid(
            "qe_linear: active-domain quantifier outside a database context");
      }
      FormulaPtr dual = Formula::f_not(
          Formula::exists(f->var(), Formula::f_not(f->children()[0])));
      return qe_rec(dual);
    }
  }
  CQA_CHECK(false);
  return Status::internal("unreachable");
}

}  // namespace

Result<FormulaPtr> qe_linear(const FormulaPtr& f) {
  if (!f->is_linear()) {
    return Status::invalid("qe_linear: formula has nonlinear atoms");
  }
  return qe_rec(f);
}

Result<std::vector<LinearCell>> qe_to_cells(const FormulaPtr& f,
                                            std::size_t dim) {
  auto qf = qe_linear(f);
  if (!qf.is_ok()) return qf.status();
  if (qf.value()->max_var() >= static_cast<int>(dim)) {
    // Free variables must fit; bound ones were eliminated.
    for (std::size_t v : qf.value()->free_vars()) {
      if (v >= dim) {
        return Status::invalid("qe_to_cells: free variable x" +
                               std::to_string(v) +
                               " outside ambient dimension");
      }
    }
  }
  return formula_to_cells(qf.value(), dim);
}

Result<bool> qe_decide_sentence(const FormulaPtr& f) {
  auto qf = qe_linear(f);
  if (!qf.is_ok()) return qf.status();
  if (!qf.value()->free_vars().empty()) {
    return Status::invalid("qe_decide_sentence: formula has free variables");
  }
  auto cells = formula_to_cells(qf.value(), 1);
  if (!cells.is_ok()) return cells.status();
  return !cells.value().empty();
}

}  // namespace cqa
