#include "cqa/constraint/fourier_motzkin.h"

#include <algorithm>
#include <set>

#include "cqa/arith/arena.h"

namespace cqa {

namespace {

// Orders constraints for set-based dedup.
struct ConstraintLess {
  bool operator()(const LinearConstraint& a, const LinearConstraint& b) const {
    if (a.cmp != b.cmp) return static_cast<int>(a.cmp) < static_cast<int>(b.cmp);
    if (a.rhs != b.rhs) return a.rhs < b.rhs;
    if (a.coeffs.size() != b.coeffs.size()) {
      return a.coeffs.size() < b.coeffs.size();
    }
    for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
      if (a.coeffs[i] != b.coeffs[i]) return a.coeffs[i] < b.coeffs[i];
    }
    return false;
  }
};

}  // namespace

std::vector<LinearConstraint> fm_simplify(
    const std::vector<LinearConstraint>& cs) {
  // Canonicalize, dedupe, and drop rows dominated by an identical-LHS row.
  std::set<LinearConstraint, ConstraintLess> seen;
  std::vector<LinearConstraint> rows;
  for (const auto& c : cs) {
    LinearConstraint n = c.normalized();
    if (n.is_constant() && n.constant_truth()) continue;  // trivially true
    if (seen.insert(n).second) rows.push_back(std::move(n));
  }
  // Dominance on equal coefficient vectors:
  //   a.x <  r1 dominates a.x <  r2 when r1 <= r2;
  //   a.x <= r1 dominates a.x <= r2 when r1 <= r2;
  //   a.x <  r1 dominates a.x <= r2 when r1 <= r2;
  //   a.x <= r1 dominates a.x <  r2 when r1 <  r2.
  // Dominance is transitive and only relates rows with identical LHS, so
  // instead of the quadratic pairwise sweep, group rows by coefficient
  // vector and keep each group's minimal elements: the tightest <= row
  // survives iff every < row is strictly looser, and the tightest < row
  // survives iff no <= row is at least as tight. (Exact duplicates were
  // already removed by the set above.)
  std::vector<bool> dead(rows.size(), false);
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) order[i] = i;
  auto coeffs_less = [&rows](std::size_t a, std::size_t b) {
    if (rows[a].coeffs.size() != rows[b].coeffs.size()) {
      return rows[a].coeffs.size() < rows[b].coeffs.size();
    }
    for (std::size_t i = 0; i < rows[a].coeffs.size(); ++i) {
      const int c = rows[a].coeffs[i].cmp(rows[b].coeffs[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return coeffs_less(a, b);
  });
  std::size_t g0 = 0;
  while (g0 < order.size()) {
    std::size_t g1 = g0 + 1;
    while (g1 < order.size() && !coeffs_less(order[g0], order[g1])) ++g1;
    // Group [g0, g1): identical coefficient vectors.
    bool have_le = false, have_lt = false;
    std::size_t best_le = 0, best_lt = 0;
    for (std::size_t k = g0; k < g1; ++k) {
      const std::size_t i = order[k];
      if (rows[i].cmp == LinCmp::kLe) {
        if (!have_le || rows[i].rhs < rows[best_le].rhs) best_le = i;
        have_le = true;
      } else if (rows[i].cmp == LinCmp::kLt) {
        if (!have_lt || rows[i].rhs < rows[best_lt].rhs) best_lt = i;
        have_lt = true;
      }
    }
    for (std::size_t k = g0; k < g1; ++k) {
      const std::size_t i = order[k];
      if (rows[i].cmp == LinCmp::kEq) continue;
      if (rows[i].cmp == LinCmp::kLe) {
        dead[i] = i != best_le ||
                  (have_lt && rows[best_lt].rhs <= rows[i].rhs);
      } else {
        dead[i] = i != best_lt || (have_le && rows[best_le].rhs < rows[i].rhs);
      }
    }
    g0 = g1;
  }
  std::vector<LinearConstraint> out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!dead[i]) out.push_back(std::move(rows[i]));
  }
  return out;
}

std::vector<LinearConstraint> fm_eliminate(
    const std::vector<LinearConstraint>& cs, std::size_t var,
    guard::WorkMeter* meter) {
  // One elimination = one arena lifetime: the combination loop churns
  // transient multi-limb rationals; whatever heap nodes it pools beyond
  // the retained working set are bulk-freed when the scope closes.
  arith::ArenaScope arena_scope;
  // Pass 1: if an equality pivots on var, substitute it everywhere.
  for (std::size_t k = 0; k < cs.size(); ++k) {
    const LinearConstraint& eq = cs[k];
    if (eq.cmp != LinCmp::kEq || var >= eq.dim() || eq.coeffs[var].is_zero()) {
      continue;
    }
    // var = (rhs - sum_{i != var} a_i x_i) / a_var
    const Rational inv = eq.coeffs[var].inverse();
    std::vector<LinearConstraint> out;
    out.reserve(cs.size() - 1);
    for (std::size_t j = 0; j < cs.size(); ++j) {
      if (j == k) continue;
      LinearConstraint c = cs[j];
      if (var < c.dim() && !c.coeffs[var].is_zero()) {
        const Rational f = c.coeffs[var] * inv;
        for (std::size_t i = 0; i < c.dim(); ++i) {
          if (i == var) continue;
          Rational e = i < eq.dim() ? eq.coeffs[i] : Rational();
          c.coeffs[i] -= f * e;
        }
        c.rhs -= f * eq.rhs;
        c.coeffs[var] = Rational();
      }
      out.push_back(std::move(c));
    }
    return fm_simplify(out);
  }

  // Pass 2: classic FM on inequalities.
  std::vector<LinearConstraint> uppers, lowers, rest;
  for (const auto& c : cs) {
    Rational a = var < c.dim() ? c.coeffs[var] : Rational();
    if (a.is_zero()) {
      rest.push_back(c);
    } else if (a.sign() > 0) {
      uppers.push_back(c);
    } else {
      lowers.push_back(c);
    }
  }
  for (const auto& lo : lowers) {
    if (guard::meter_tripped(meter)) break;
    for (const auto& up : uppers) {
      if (meter != nullptr && !meter->charge_fm_rows(rest.size() + 1)) break;
      // lo: a_l x_var + L <= r_l with a_l < 0  =>  x_var >= (r_l - L)/a_l
      // up: a_u x_var + U <= r_u with a_u > 0  =>  x_var <= (r_u - U)/a_u
      // Combine: a_u * lo - a_l * up eliminates x_var with positive scales
      // (-a_l > 0 and a_u > 0).
      const Rational su = up.coeffs[var];   // > 0
      const Rational sl = -lo.coeffs[var];  // > 0
      LinearConstraint c;
      const std::size_t dim = std::max(lo.dim(), up.dim());
      c.coeffs.assign(dim, Rational());
      for (std::size_t i = 0; i < dim; ++i) {
        Rational cl = i < lo.dim() ? lo.coeffs[i] : Rational();
        Rational cu = i < up.dim() ? up.coeffs[i] : Rational();
        c.coeffs[i] = su * cl + sl * cu;
      }
      c.coeffs[var] = Rational();
      c.rhs = su * lo.rhs + sl * up.rhs;
      const bool strict =
          lo.cmp == LinCmp::kLt || up.cmp == LinCmp::kLt;
      c.cmp = strict ? LinCmp::kLt : LinCmp::kLe;
      rest.push_back(std::move(c));
    }
  }
  // Tripped: skip the O(n^2) simplify; the caller discards the result.
  if (guard::meter_tripped(meter)) return rest;
  return fm_simplify(rest);
}

bool fm_feasible(const std::vector<LinearConstraint>& cs, std::size_t dim) {
  std::vector<LinearConstraint> cur = fm_simplify(cs);
  for (std::size_t v = dim; v-- > 0;) {
    for (const auto& c : cur) {
      if (c.is_constant() && !c.constant_truth()) return false;
    }
    cur = fm_eliminate(cur, v);
  }
  for (const auto& c : cur) {
    if (!c.constant_truth()) return false;
  }
  return true;
}

namespace {

// Bounds on x_var from constraints in which every other coefficient is 0.
AxisInterval interval_from_ground(const std::vector<LinearConstraint>& cs,
                                  std::size_t var) {
  AxisInterval iv;
  for (const auto& c : cs) {
    bool pure = true;
    for (std::size_t i = 0; i < c.dim(); ++i) {
      if (i != var && !c.coeffs[i].is_zero()) pure = false;
    }
    if (!pure) continue;
    Rational a = var < c.dim() ? c.coeffs[var] : Rational();
    if (a.is_zero()) {
      if (!c.constant_truth()) iv.empty = true;
      continue;
    }
    Rational bound = c.rhs / a;
    if (c.cmp == LinCmp::kEq) {
      if ((!iv.lo || *iv.lo < bound || (*iv.lo == bound && !iv.lo_strict))) {
        iv.lo = bound;
        iv.lo_strict = false;
      } else if (*iv.lo > bound) {
        iv.empty = true;
      }
      if ((!iv.hi || *iv.hi > bound || (*iv.hi == bound && !iv.hi_strict))) {
        iv.hi = bound;
        iv.hi_strict = false;
      } else if (*iv.hi < bound) {
        iv.empty = true;
      }
      continue;
    }
    const bool strict = c.cmp == LinCmp::kLt;
    if (a.sign() > 0) {
      // x <=(<) bound
      if (!iv.hi || bound < *iv.hi || (bound == *iv.hi && strict)) {
        iv.hi = bound;
        iv.hi_strict = strict;
      }
    } else {
      // x >=(>) bound
      if (!iv.lo || bound > *iv.lo || (bound == *iv.lo && strict)) {
        iv.lo = bound;
        iv.lo_strict = strict;
      }
    }
  }
  if (iv.lo && iv.hi) {
    if (*iv.lo > *iv.hi ||
        (*iv.lo == *iv.hi && (iv.lo_strict || iv.hi_strict))) {
      iv.empty = true;
    }
  }
  return iv;
}

Rational pick_in_interval(const AxisInterval& iv) {
  CQA_CHECK(!iv.empty);
  if (iv.lo && iv.hi) {
    if (*iv.lo == *iv.hi) return *iv.lo;
    return Rational::mid(*iv.lo, *iv.hi);
  }
  if (iv.lo) return *iv.lo + Rational(1);
  if (iv.hi) return *iv.hi - Rational(1);
  return Rational(0);
}

}  // namespace

AxisInterval fm_project_to_axis(const std::vector<LinearConstraint>& cs,
                                std::size_t var, std::size_t dim) {
  std::vector<LinearConstraint> cur = fm_simplify(cs);
  for (std::size_t v = dim; v-- > 0;) {
    if (v == var) continue;
    cur = fm_eliminate(cur, v);
  }
  AxisInterval iv = interval_from_ground(cur, var);
  for (const auto& c : cur) {
    if (c.is_constant() && !c.constant_truth()) iv.empty = true;
  }
  return iv;
}

std::optional<RVec> fm_sample_point(const std::vector<LinearConstraint>& cs,
                                    std::size_t dim) {
  // Eliminate variables back-to-front, keeping each level's constraint
  // system; then assign values front-to-back by substitution.
  std::vector<std::vector<LinearConstraint>> levels;  // levels[v]: only x_0..x_v
  levels.resize(dim + 1);
  levels[dim] = fm_simplify(cs);
  for (std::size_t v = dim; v-- > 0;) {
    levels[v] = fm_eliminate(levels[v + 1], v);
  }
  for (const auto& c : levels[0]) {
    if (!c.constant_truth()) return std::nullopt;
  }
  RVec point(dim);
  for (std::size_t v = 0; v < dim; ++v) {
    // Substitute already-chosen x_0..x_{v-1} into level v+1's system and
    // read off the interval for x_v.
    std::vector<LinearConstraint> ground;
    for (const auto& c : levels[v + 1]) {
      LinearConstraint g = c;
      for (std::size_t i = 0; i < v && i < g.dim(); ++i) {
        if (g.coeffs[i].is_zero()) continue;
        g.rhs -= g.coeffs[i] * point[i];
        g.coeffs[i] = Rational();
      }
      ground.push_back(std::move(g));
    }
    AxisInterval iv = interval_from_ground(ground, v);
    if (iv.empty) return std::nullopt;  // defensive; should not happen
    Rational value = pick_in_interval(iv);
    // Respect strict bounds when lo == pick or hi == pick.
    if (iv.lo && value == *iv.lo && iv.lo_strict) {
      if (iv.hi) {
        value = Rational::mid(*iv.lo, *iv.hi);
      } else {
        value = *iv.lo + Rational(1);
      }
    }
    if (iv.hi && value == *iv.hi && iv.hi_strict) {
      if (iv.lo) {
        value = Rational::mid(*iv.lo, *iv.hi);
      } else {
        value = *iv.hi - Rational(1);
      }
    }
    point[v] = value;
  }
  // Exact verification (FM is complete, but be defensive about strictness).
  for (const auto& c : cs) {
    if (!c.satisfied_by(point)) return std::nullopt;
  }
  return point;
}

}  // namespace cqa
