// Normalized linear constraints.
//
// Every FO+LIN atom normalizes to  coeffs . x  cmp  rhs  with cmp one of
// {<, <=, =}. Disequalities split into two strict cells upstream.

#ifndef CQA_CONSTRAINT_LINEAR_ATOM_H_
#define CQA_CONSTRAINT_LINEAR_ATOM_H_

#include <string>
#include <vector>

#include "cqa/linalg/matrix.h"
#include "cqa/logic/formula.h"

namespace cqa {

/// Comparison of a normalized linear constraint.
enum class LinCmp { kLt, kLe, kEq };

/// One linear constraint: coeffs . x  cmp  rhs.
struct LinearConstraint {
  RVec coeffs;
  Rational rhs;
  LinCmp cmp = LinCmp::kLe;

  std::size_t dim() const { return coeffs.size(); }
  /// True iff all coefficients are zero (a ground fact about rhs).
  bool is_constant() const { return vec_is_zero(coeffs); }
  /// Ground truth value; only meaningful when is_constant().
  bool constant_truth() const;
  /// Exact satisfaction test at a point.
  bool satisfied_by(const RVec& point) const;
  /// Scales so the first nonzero coefficient has absolute value 1
  /// (canonical form for deduplication). Constants scale rhs to {-1,0,1}.
  LinearConstraint normalized() const;
  /// The same constraint with <= in place of < (topological closure).
  LinearConstraint closure() const;

  bool operator==(const LinearConstraint& o) const {
    return cmp == o.cmp && rhs == o.rhs && coeffs == o.coeffs;
  }

  std::string to_string() const;
};

/// Converts atom `poly op 0` into constraints over variables 0..dim-1.
/// kNe is rejected (callers split cells); kGt/kGe flip sign.
/// Fails if poly is not affine or mentions variables >= dim.
Result<LinearConstraint> to_linear_constraint(const Polynomial& poly,
                                              RelOp op, std::size_t dim);

/// Builds the atom formula back from a constraint.
FormulaPtr to_atom(const LinearConstraint& c);

}  // namespace cqa

#endif  // CQA_CONSTRAINT_LINEAR_ATOM_H_
