// Quantifier elimination for FO+LIN.
//
// This realizes the closure property the paper leans on: "the application
// of a FO+LIN query to a linear constraint set yields a new set of linear
// constraints". Exists-blocks go through DNF + Fourier-Motzkin; forall
// dualizes.

#ifndef CQA_CONSTRAINT_QE_H_
#define CQA_CONSTRAINT_QE_H_

#include "cqa/constraint/linear_cell.h"
#include "cqa/guard/meter.h"
#include "cqa/logic/formula.h"

namespace cqa {

/// Eliminates every quantifier from a predicate-free FO+LIN formula,
/// returning an equivalent quantifier-free formula over the same free
/// variables. Fails on nonlinear atoms or schema predicates.
///
/// `meter` (nullptr = unmetered) bounds the rewrite: atoms materialized
/// per exists-block and rows per Fourier-Motzkin elimination are
/// charged, and the first quota trip aborts the rewrite with
/// kResourceExhausted instead of building the Karpinski-Macintyre
/// blowup to completion.
Result<FormulaPtr> qe_linear(const FormulaPtr& f,
                             guard::WorkMeter* meter = nullptr);

/// Convenience: QE + cell extraction in one call. `dim` is the ambient
/// dimension (how many variable slots the caller cares about); it must
/// cover every free variable of f.
Result<std::vector<LinearCell>> qe_to_cells(const FormulaPtr& f,
                                            std::size_t dim);

/// Truth value of an FO+LIN sentence (QE all the way to ground facts).
Result<bool> qe_decide_sentence(const FormulaPtr& f);

}  // namespace cqa

#endif  // CQA_CONSTRAINT_QE_H_
