#include "cqa/constraint/linear_atom.h"

#include <sstream>

namespace cqa {

bool LinearConstraint::constant_truth() const {
  switch (cmp) {
    case LinCmp::kLt: return Rational(0) < rhs;
    case LinCmp::kLe: return Rational(0) <= rhs;
    case LinCmp::kEq: return rhs.is_zero();
  }
  return false;
}

bool LinearConstraint::satisfied_by(const RVec& point) const {
  CQA_CHECK(point.size() >= coeffs.size());
  Rational lhs;
  for (std::size_t i = 0; i < coeffs.size(); ++i) lhs += coeffs[i] * point[i];
  switch (cmp) {
    case LinCmp::kLt: return lhs < rhs;
    case LinCmp::kLe: return lhs <= rhs;
    case LinCmp::kEq: return lhs == rhs;
  }
  return false;
}

LinearConstraint LinearConstraint::normalized() const {
  LinearConstraint out = *this;
  for (const Rational& c : coeffs) {
    if (!c.is_zero()) {
      Rational scale = c.abs().inverse();
      out.coeffs = vec_scale(scale, coeffs);
      out.rhs = rhs * scale;
      return out;
    }
  }
  // Constant row: canonicalize rhs to its sign.
  out.rhs = Rational(rhs.sign());
  return out;
}

LinearConstraint LinearConstraint::closure() const {
  LinearConstraint out = *this;
  if (out.cmp == LinCmp::kLt) out.cmp = LinCmp::kLe;
  return out;
}

std::string LinearConstraint::to_string() const {
  std::ostringstream os;
  bool any = false;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i].is_zero()) continue;
    if (any) os << " + ";
    os << coeffs[i].to_string() << "*x" << i;
    any = true;
  }
  if (!any) os << "0";
  switch (cmp) {
    case LinCmp::kLt: os << " < "; break;
    case LinCmp::kLe: os << " <= "; break;
    case LinCmp::kEq: os << " = "; break;
  }
  os << rhs.to_string();
  return os.str();
}

Result<LinearConstraint> to_linear_constraint(const Polynomial& poly,
                                              RelOp op, std::size_t dim) {
  if (!poly.is_linear()) {
    return Status::invalid("nonlinear atom in linear constraint context: " +
                           poly.to_string());
  }
  if (poly.max_var() >= static_cast<int>(dim)) {
    return Status::invalid("atom variable outside ambient dimension");
  }
  LinearConstraint c;
  c.coeffs.assign(dim, Rational());
  Rational constant;
  for (const auto& [m, coef] : poly.terms()) {
    bool is_const = true;
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i] > 0) {
        CQA_DCHECK(m[i] == 1);
        c.coeffs[i] += coef;
        is_const = false;
      }
    }
    if (is_const) constant += coef;
  }
  c.rhs = -constant;
  switch (op) {
    case RelOp::kLt:
      c.cmp = LinCmp::kLt;
      return c;
    case RelOp::kLe:
      c.cmp = LinCmp::kLe;
      return c;
    case RelOp::kEq:
      c.cmp = LinCmp::kEq;
      return c;
    case RelOp::kGt:
    case RelOp::kGe:
      c.coeffs = vec_scale(Rational(-1), c.coeffs);
      c.rhs = -c.rhs;
      c.cmp = op == RelOp::kGt ? LinCmp::kLt : LinCmp::kLe;
      return c;
    case RelOp::kNe:
      return Status::invalid("disequality must be split before constraint "
                             "normalization");
  }
  return Status::internal("unreachable");
}

FormulaPtr to_atom(const LinearConstraint& c) {
  Polynomial p = Polynomial::constant(-c.rhs);
  for (std::size_t i = 0; i < c.coeffs.size(); ++i) {
    if (c.coeffs[i].is_zero()) continue;
    p += Polynomial::variable(i) * c.coeffs[i];
  }
  RelOp op = c.cmp == LinCmp::kLt
                 ? RelOp::kLt
                 : (c.cmp == LinCmp::kLe ? RelOp::kLe : RelOp::kEq);
  return Formula::atom(std::move(p), op);
}

}  // namespace cqa
