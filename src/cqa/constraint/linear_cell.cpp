#include "cqa/constraint/linear_cell.h"

#include <sstream>

#include "cqa/logic/transform.h"

namespace cqa {

FormulaPtr LinearCell::to_formula() const {
  std::vector<FormulaPtr> atoms;
  atoms.reserve(constraints_.size());
  for (const auto& c : constraints_) atoms.push_back(to_atom(c));
  return Formula::f_and(std::move(atoms));
}

LinearCell LinearCell::closure() const {
  LinearCell out(dim_);
  for (const auto& c : constraints_) out.add(c.closure());
  return out;
}

LinearCell LinearCell::restrict_var(std::size_t var,
                                    const Rational& value) const {
  CQA_CHECK(var < dim_);
  LinearCell out(dim_);
  for (const auto& c : constraints_) {
    LinearConstraint r = c;
    if (!r.coeffs[var].is_zero()) {
      r.rhs -= r.coeffs[var] * value;
      r.coeffs[var] = Rational();
    }
    out.add(std::move(r));
  }
  return out;
}

LinearCell LinearCell::intersect_box(const Rational& lo,
                                     const Rational& hi) const {
  LinearCell out = *this;
  for (std::size_t v = 0; v < dim_; ++v) {
    LinearConstraint upper;
    upper.coeffs.assign(dim_, Rational());
    upper.coeffs[v] = Rational(1);
    upper.rhs = hi;
    upper.cmp = LinCmp::kLe;
    out.add(std::move(upper));
    LinearConstraint lower;
    lower.coeffs.assign(dim_, Rational());
    lower.coeffs[v] = Rational(-1);
    lower.rhs = -lo;
    lower.cmp = LinCmp::kLe;
    out.add(std::move(lower));
  }
  return out;
}

bool LinearCell::is_bounded() const {
  for (std::size_t v = 0; v < dim_; ++v) {
    AxisInterval iv = project_to_axis(v);
    if (iv.empty) return true;  // empty cells are (vacuously) bounded
    if (!iv.lo.has_value() || !iv.hi.has_value()) return false;
  }
  return true;
}

std::string LinearCell::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i) os << " & ";
    os << constraints_[i].to_string();
  }
  os << "}";
  return os.str();
}

Result<std::vector<LinearCell>> formula_to_cells(const FormulaPtr& f,
                                                 std::size_t dim) {
  if (!f->is_quantifier_free()) {
    return Status::invalid("formula_to_cells requires a quantifier-free "
                           "formula (run QE first)");
  }
  if (f->has_predicates()) {
    return Status::invalid("formula_to_cells requires a predicate-free "
                           "formula (substitute the database first)");
  }
  auto dnf = to_dnf(f);
  if (!dnf.is_ok()) return dnf.status();

  std::vector<LinearCell> out;
  for (const auto& cell_lits : dnf.value()) {
    // Split disequalities: p != 0 becomes (p < 0) or (p > 0). Each cell
    // with k disequalities becomes 2^k candidate cells.
    std::vector<std::vector<Literal>> expanded{{}};
    for (const auto& lit : cell_lits) {
      if (lit.op != RelOp::kNe) {
        for (auto& e : expanded) e.push_back(lit);
        continue;
      }
      std::vector<std::vector<Literal>> next;
      next.reserve(expanded.size() * 2);
      for (const auto& e : expanded) {
        auto less = e;
        less.push_back(Literal{lit.poly, RelOp::kLt});
        auto greater = e;
        greater.push_back(Literal{lit.poly, RelOp::kGt});
        next.push_back(std::move(less));
        next.push_back(std::move(greater));
      }
      expanded = std::move(next);
    }
    for (const auto& lits : expanded) {
      LinearCell cell(dim);
      bool ok = true;
      for (const auto& lit : lits) {
        auto c = to_linear_constraint(lit.poly, lit.op, dim);
        if (!c.is_ok()) return c.status();
        cell.add(std::move(c).take());
      }
      if (ok && cell.is_feasible()) out.push_back(std::move(cell));
    }
  }
  return out;
}

FormulaPtr cells_to_formula(const std::vector<LinearCell>& cells) {
  std::vector<FormulaPtr> parts;
  parts.reserve(cells.size());
  for (const auto& c : cells) parts.push_back(c.to_formula());
  return Formula::f_or(std::move(parts));
}

}  // namespace cqa
