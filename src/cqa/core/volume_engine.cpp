#include "cqa/core/volume_engine.h"

#include <algorithm>

#include "cqa/approx/ellipsoid.h"
#include "cqa/approx/gadgets.h"
#include "cqa/approx/hit_and_run.h"
#include "cqa/approx/monte_carlo.h"
#include "cqa/logic/transform.h"
#include "cqa/volume/growth.h"
#include "cqa/volume/inclusion_exclusion.h"
#include "cqa/volume/semilinear_volume.h"
#include "cqa/volume/variable_independence.h"

namespace cqa {

Result<Rational> VolumeEngine::mu(
    const std::string& query, const std::vector<std::string>& output_vars) {
  auto cells = queries_.cells(query, output_vars);
  if (!cells.is_ok()) return cells.status();
  return mu_operator(cells.value());
}

Result<UPoly> VolumeEngine::growth_polynomial(
    const std::string& query, const std::vector<std::string>& output_vars) {
  auto cells = queries_.cells(query, output_vars);
  if (!cells.is_ok()) return cells.status();
  auto g = volume_growth(cells.value());
  if (!g.is_ok()) return g.status();
  return g.value().poly;
}

Result<VolumeAnswer> VolumeEngine::volume(
    const std::string& query, const std::vector<std::string>& output_vars,
    const VolumeOptions& options) {
  VolumeAnswer answer;

  if (options.strategy == VolumeStrategy::kMonteCarlo) {
    // Monte-Carlo path works directly on the (inlined) formula, including
    // polynomial constraints; always VOL_I semantics (samples live in the
    // unit box).
    auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(query);
    if (!parsed.is_ok()) return parsed.status();
    std::vector<std::size_t> element_vars;
    for (const auto& name : output_vars) {
      int idx = const_cast<ConstraintDatabase*>(db_)->vars().find(name);
      if (idx < 0) return Status::invalid("unknown output variable: " + name);
      element_vars.push_back(static_cast<std::size_t>(idx));
    }
    for (std::size_t v : parsed.value()->free_vars()) {
      if (std::find(element_vars.begin(), element_vars.end(), v) ==
          element_vars.end()) {
        return Status::invalid("query has a free variable that is not an "
                               "output: " +
                               db_->vars().name_of(v));
      }
    }
    std::size_t m =
        blumer_sample_bound(options.epsilon, options.delta, options.vc_dim);
    if (options.max_mc_samples > 0) {
      m = std::min(m, options.max_mc_samples);
    }
    McVolumeEstimator est(&db_->db(), parsed.value(), element_vars, m,
                          options.seed);
    auto e = est.estimate({}, options.cancel);
    if (!e.is_ok()) return e.status();
    answer.estimate = e.value();
    answer.lower = e.value() - options.epsilon;
    answer.upper = e.value() + options.epsilon;
    answer.points_evaluated = m;
    answer.points_requested = m;
    return answer;
  }

  // Exact strategies go through the FO+LIN pipeline; their results are
  // memoizable, keyed on the canonical parsed form plus the output
  // variable list and the options that change the exact answer.
  std::optional<std::string> cache_key;
  const bool exact_strategy =
      options.strategy == VolumeStrategy::kAuto ||
      options.strategy == VolumeStrategy::kExactSweep ||
      options.strategy == VolumeStrategy::kInclusionExclusion ||
      options.strategy == VolumeStrategy::kVariableIndependent;
  if (cache_ != nullptr && exact_strategy) {
    auto canon = queries_.canonical_key(query);
    if (!canon.is_ok()) return canon.status();
    std::string key = "vol|" + canon.value();
    for (const auto& v : output_vars) key += "|" + v;
    key += "|s" + std::to_string(static_cast<int>(options.strategy));
    if (options.clip_to_unit_box) key += "|clip";
    if (auto hit = cache_->lookup(key)) {
      answer.exact = *hit;
      return answer;
    }
    cache_key = std::move(key);
  }
  auto memoize = [&](const Rational& v) {
    if (cache_key) cache_->store(*cache_key, v);
  };

  RewriteOptions rw;
  rw.cancel = options.cancel;
  rw.meter = options.meter;
  auto cells = queries_.cells(query, output_vars, rw);
  if (!cells.is_ok()) return cells.status();
  std::vector<LinearCell> live = cells.value();
  if (options.clip_to_unit_box) {
    for (auto& c : live) c = c.intersect_box(Rational(0), Rational(1));
  }

  switch (options.strategy) {
    case VolumeStrategy::kAuto: {
      auto v = semilinear_volume(live, nullptr, options.cancel,
                                 options.meter);
      if (!v.is_ok()) return v.status();
      memoize(v.value());
      answer.exact = v.value();
      return answer;
    }
    case VolumeStrategy::kExactSweep: {
      auto v = semilinear_volume_sweep(live, nullptr, options.cancel,
                                       options.meter);
      if (!v.is_ok()) return v.status();
      memoize(v.value());
      answer.exact = v.value();
      return answer;
    }
    case VolumeStrategy::kInclusionExclusion: {
      auto v = volume_inclusion_exclusion(live);
      if (!v.is_ok()) return v.status();
      memoize(v.value());
      answer.exact = v.value();
      return answer;
    }
    case VolumeStrategy::kVariableIndependent: {
      auto v = volume_variable_independent(live);
      if (!v.is_ok()) return v.status();
      memoize(v.value());
      answer.exact = v.value();
      return answer;
    }
    case VolumeStrategy::kEllipsoidBounds: {
      if (live.size() != 1) {
        return Status::invalid(
            "ellipsoid bounds require a single convex cell");
      }
      auto b = john_volume_bounds(Polyhedron(live[0]));
      if (!b.is_ok()) return b.status();
      answer.lower = b.value().lower;
      answer.upper = b.value().upper;
      return answer;
    }
    case VolumeStrategy::kTrivialHalf: {
      auto v = trivial_half_approximation(live, output_vars.size());
      if (!v.is_ok()) return v.status();
      answer.estimate = v.value().to_double();
      return answer;
    }
    case VolumeStrategy::kHitAndRun: {
      if (live.size() != 1) {
        return Status::invalid(
            "hit-and-run requires a single convex cell");
      }
      auto r = hit_and_run_volume(Polyhedron(live[0]),
                                  options.hit_and_run_samples,
                                  options.seed);
      if (!r.is_ok()) return r.status();
      answer.estimate = r.value().volume;
      return answer;
    }
    case VolumeStrategy::kMonteCarlo:
      break;  // handled above
  }
  return Status::internal("unreachable");
}

}  // namespace cqa
