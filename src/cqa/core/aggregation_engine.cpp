#include "cqa/core/aggregation_engine.h"

namespace cqa {

Result<std::map<std::size_t, Rational>> AggregationEngine::bind(
    const std::vector<std::pair<std::string, Rational>>& bindings) const {
  std::map<std::size_t, Rational> out;
  for (const auto& [name, value] : bindings) {
    int idx = db_->vars().find(name);
    if (idx < 0) return Status::invalid("unknown variable: " + name);
    out[static_cast<std::size_t>(idx)] = value;
  }
  return out;
}

Result<Rational> AggregationEngine::aggregate(
    AggregateFn fn, const std::string& query, const std::string& output_var,
    const std::vector<std::pair<std::string, Rational>>& bindings) {
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(query);
  if (!parsed.is_ok()) return parsed.status();
  const std::size_t var = const_cast<ConstraintDatabase*>(db_)->var(
      output_var);
  auto params = bind(bindings);
  if (!params.is_ok()) return params.status();
  switch (fn) {
    case AggregateFn::kCount:
      return agg_count(db_->db(), parsed.value(), var, params.value());
    case AggregateFn::kSum:
      return agg_sum(db_->db(), parsed.value(), var, params.value());
    case AggregateFn::kAvg:
      return agg_avg(db_->db(), parsed.value(), var, params.value());
    case AggregateFn::kMin:
      return agg_min(db_->db(), parsed.value(), var, params.value());
    case AggregateFn::kMax:
      return agg_max(db_->db(), parsed.value(), var, params.value());
  }
  return Status::internal("unreachable");
}

Result<std::vector<std::pair<Rational, Rational>>>
AggregationEngine::group_by(
    AggregateFn fn, const std::string& query, const std::string& group_var,
    const std::string& output_var,
    const std::vector<std::pair<std::string, Rational>>& bindings) {
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(query);
  if (!parsed.is_ok()) return parsed.status();
  const std::size_t gvar =
      const_cast<ConstraintDatabase*>(db_)->var(group_var);
  const std::size_t ovar =
      const_cast<ConstraintDatabase*>(db_)->var(output_var);
  auto params = bind(bindings);
  if (!params.is_ok()) return params.status();
  // Groups: the values of group_var in Exists output_var . query.
  FormulaPtr projected = Formula::exists(ovar, parsed.value());
  auto groups = saf_output(db_->db(), projected, gvar, params.value());
  if (!groups.is_ok()) return groups.status();
  std::vector<std::pair<Rational, Rational>> rows;
  for (const Rational& g : groups.value()) {
    std::map<std::size_t, Rational> inner = params.value();
    inner[gvar] = g;
    Result<Rational> v = Status::internal("unset");
    switch (fn) {
      case AggregateFn::kCount:
        v = agg_count(db_->db(), parsed.value(), ovar, inner);
        break;
      case AggregateFn::kSum:
        v = agg_sum(db_->db(), parsed.value(), ovar, inner);
        break;
      case AggregateFn::kAvg:
        v = agg_avg(db_->db(), parsed.value(), ovar, inner);
        break;
      case AggregateFn::kMin:
        v = agg_min(db_->db(), parsed.value(), ovar, inner);
        break;
      case AggregateFn::kMax:
        v = agg_max(db_->db(), parsed.value(), ovar, inner);
        break;
    }
    if (!v.is_ok()) return v.status();
    rows.emplace_back(g, v.value());
  }
  return rows;
}

Result<Rational> AggregationEngine::bag_aggregate(
    AggregateFn fn, const std::string& relation, std::size_t column,
    const std::string& filter_formula,
    const std::vector<std::string>& args) {
  FormulaPtr filter;
  if (!filter_formula.empty()) {
    // Parse in a local table mapping the argument names to slots 0..k-1.
    VarTable local;
    for (const auto& a : args) local.index_of(a);
    auto f = parse_formula(filter_formula, &local);
    if (!f.is_ok()) return f.status();
    for (std::size_t v : f.value()->free_vars()) {
      if (v >= args.size()) {
        return Status::invalid("bag filter uses a variable that is not an "
                               "argument: " +
                               local.name_of(v));
      }
    }
    filter = f.value();
  }
  switch (fn) {
    case AggregateFn::kCount:
      return bag_count(db_->db(), relation, column, filter);
    case AggregateFn::kSum:
      return bag_sum(db_->db(), relation, column, filter);
    case AggregateFn::kAvg:
      return bag_avg(db_->db(), relation, column, filter);
    case AggregateFn::kMin:
    case AggregateFn::kMax: {
      auto col = bag_column(db_->db(), relation, column, filter);
      if (!col.is_ok()) return col.status();
      if (col.value().empty()) {
        return Status::invalid("bag MIN/MAX of empty");
      }
      Rational best = col.value()[0];
      for (const auto& v : col.value()) {
        if (fn == AggregateFn::kMin ? v < best : v > best) best = v;
      }
      return best;
    }
  }
  return Status::internal("unreachable");
}

Result<std::vector<Rational>> AggregationEngine::output(
    const std::string& query, const std::string& output_var,
    const std::vector<std::pair<std::string, Rational>>& bindings) {
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(query);
  if (!parsed.is_ok()) return parsed.status();
  const std::size_t var =
      const_cast<ConstraintDatabase*>(db_)->var(output_var);
  auto params = bind(bindings);
  if (!params.is_ok()) return params.status();
  return saf_output(db_->db(), parsed.value(), var, params.value());
}

}  // namespace cqa
