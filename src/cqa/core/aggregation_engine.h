// Classical aggregation over constraint databases: the FO+POLY+SUM user
// surface. Aggregates apply only to safe (finite-output) queries --
// Section 5's range-restriction discipline.

#ifndef CQA_CORE_AGGREGATION_ENGINE_H_
#define CQA_CORE_AGGREGATION_ENGINE_H_

#include <string>
#include <vector>

#include "cqa/aggregate/polygon_area.h"
#include "cqa/aggregate/sql_aggregates.h"
#include "cqa/core/constraint_database.h"

namespace cqa {

/// Supported aggregate functions.
enum class AggregateFn { kCount, kSum, kAvg, kMin, kMax };

/// Aggregation façade.
class AggregationEngine {
 public:
  explicit AggregationEngine(const ConstraintDatabase* db) : db_(db) {}

  /// Applies the aggregate to { value of `output_var` : query holds }.
  /// The query's output set must be finite (safe); every other free
  /// variable must be bound in `bindings`.
  Result<Rational> aggregate(AggregateFn fn, const std::string& query,
                             const std::string& output_var,
                             const std::vector<std::pair<std::string,
                                                         Rational>>&
                                 bindings = {});

  /// The finite output itself (sorted).
  Result<std::vector<Rational>> output(const std::string& query,
                                       const std::string& output_var,
                                       const std::vector<std::pair<
                                           std::string, Rational>>&
                                           bindings = {});

  /// GROUP BY -- the grouping construct the paper's conclusion asks for.
  /// Groups are the (finite, safe) values of `group_var` in the query's
  /// projection; within each group the aggregate applies to `output_var`.
  /// Result rows are (group value, aggregate value), sorted by group.
  /// SQL:  SELECT g, FN(v) FROM query GROUP BY g.
  Result<std::vector<std::pair<Rational, Rational>>> group_by(
      AggregateFn fn, const std::string& query,
      const std::string& group_var, const std::string& output_var,
      const std::vector<std::pair<std::string, Rational>>& bindings = {});

  /// Bag-semantics aggregation over one column of a finite relation, with
  /// an optional SQL-WHERE filter over the tuple slots named `args`.
  Result<Rational> bag_aggregate(AggregateFn fn, const std::string& relation,
                                 std::size_t column,
                                 const std::string& filter_formula = "",
                                 const std::vector<std::string>& args = {});

  /// The Section-5 program: exact area of a convex polygon relation,
  /// computed inside FO+POLY+SUM.
  Result<Rational> polygon_area_in_language(const std::string& relation) {
    return convex_polygon_area_in_language(db_->db(), relation);
  }
  /// Its geometric oracle.
  Result<Rational> polygon_area_geometric(const std::string& relation) {
    return convex_polygon_area_geometric(db_->db(), relation);
  }

 private:
  Result<std::map<std::size_t, Rational>> bind(
      const std::vector<std::pair<std::string, Rational>>& bindings) const;

  const ConstraintDatabase* db_;
};

}  // namespace cqa

#endif  // CQA_CORE_AGGREGATION_ENGINE_H_
