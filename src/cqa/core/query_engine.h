// Query evaluation over a ConstraintDatabase: the FO+LIN closure pipeline
// (inline database -> quantifier-eliminate -> cells) plus sentence
// decision for FO+POLY.

#ifndef CQA_CORE_QUERY_ENGINE_H_
#define CQA_CORE_QUERY_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "cqa/constraint/qe.h"
#include "cqa/core/constraint_database.h"
#include "cqa/util/cancellation.h"

namespace cqa {

/// Options for the rewrite pipeline (one struct instead of a signature
/// per knob; extend here, not with overloads).
struct RewriteOptions {
  /// Cooperative cancellation checked between pipeline stages
  /// (parse -> expand -> inline -> QE). Not owned; may be null.
  const CancelToken* cancel = nullptr;
  /// Bypass an installed RewriteCache for this call.
  bool skip_cache = false;
  /// Resource meter charged by quantifier elimination (atoms
  /// materialized, Fourier-Motzkin rows); a quota trip aborts the
  /// rewrite with kResourceExhausted. Not owned; may be null.
  guard::WorkMeter* meter = nullptr;
};

/// Memo-cache hook for rewrite results. Core defines only this
/// interface; cqa/runtime/eval_cache provides the sharded LRU
/// implementation and cqa::Session installs it.
class RewriteCache {
 public:
  virtual ~RewriteCache() = default;
  virtual std::optional<FormulaPtr> lookup(const std::string& key) = 0;
  virtual void store(const std::string& key, const FormulaPtr& value) = 0;
};

/// Stateless query façade over a ConstraintDatabase.
class QueryEngine {
 public:
  explicit QueryEngine(const ConstraintDatabase* db) : db_(db) {}

  /// Installs a memo-cache for rewrite() results (nullptr disables).
  /// Not owned; must outlive the engine's use of it.
  void set_cache(RewriteCache* cache) { cache_ = cache; }

  /// Canonical cache key for a query: the printed form of its parsed
  /// formula, so spellings that parse to the same tree share a key.
  Result<std::string> canonical_key(const std::string& query);

  /// Evaluates a query with named output variables into a union of linear
  /// cells over those variables (in the given order -- the closure
  /// property of FO+LIN made concrete). The query may use schema
  /// predicates and quantifiers; it must be linear after inlining.
  Result<std::vector<LinearCell>> cells(const std::string& query,
                                        const std::vector<std::string>&
                                            output_vars,
                                        const RewriteOptions& options);

  /// Quantifier-free formula equivalent to the query over the database.
  Result<FormulaPtr> rewrite(const std::string& query,
                             const RewriteOptions& options);

  /// Decides a sentence (no free variables) over the database; handles
  /// FO+LIN via QE and the supported FO+POLY fragment via the sample-point
  /// procedure.
  Result<bool> ask(const std::string& sentence,
                   const RewriteOptions& options);

  // Deprecated default-options shims (prefer the option-struct forms or,
  // one level up, Session::run).
  Result<std::vector<LinearCell>> cells(
      const std::string& query,
      const std::vector<std::string>& output_vars) {
    return cells(query, output_vars, RewriteOptions{});
  }
  Result<FormulaPtr> rewrite(const std::string& query) {
    return rewrite(query, RewriteOptions{});
  }
  Result<bool> ask(const std::string& sentence) {
    return ask(sentence, RewriteOptions{});
  }

 private:
  const ConstraintDatabase* db_;
  RewriteCache* cache_ = nullptr;
};

}  // namespace cqa

#endif  // CQA_CORE_QUERY_ENGINE_H_
