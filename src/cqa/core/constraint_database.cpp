#include "cqa/core/constraint_database.h"

namespace cqa {

Status ConstraintDatabase::add_table(const std::string& name,
                                     std::vector<RVec> tuples) {
  std::size_t arity = tuples.empty() ? 1 : tuples[0].size();
  return db_.add_finite(name, arity, std::move(tuples));
}

Status ConstraintDatabase::add_table(
    const std::string& name,
    const std::vector<std::vector<std::int64_t>>& tuples) {
  std::vector<RVec> rows;
  rows.reserve(tuples.size());
  for (const auto& t : tuples) {
    RVec row;
    row.reserve(t.size());
    for (auto v : t) row.emplace_back(v);
    rows.push_back(std::move(row));
  }
  return add_table(name, std::move(rows));
}

Status ConstraintDatabase::add_bag_table(const std::string& name,
                                         std::vector<RVec> tuples) {
  std::size_t arity = tuples.empty() ? 1 : tuples[0].size();
  return db_.add_finite_bag(name, arity, std::move(tuples));
}

Status ConstraintDatabase::add_bag_table(
    const std::string& name,
    const std::vector<std::vector<std::int64_t>>& tuples) {
  std::vector<RVec> rows;
  rows.reserve(tuples.size());
  for (const auto& t : tuples) {
    RVec row;
    row.reserve(t.size());
    for (auto v : t) row.emplace_back(v);
    rows.push_back(std::move(row));
  }
  return add_bag_table(name, std::move(rows));
}

Status ConstraintDatabase::add_region(const std::string& name,
                                      const std::vector<std::string>& args,
                                      const std::string& formula) {
  // Parse in a fresh table where the argument names take slots 0..k-1.
  VarTable local;
  for (const auto& a : args) local.index_of(a);
  auto f = parse_formula(formula, &local);
  if (!f.is_ok()) return f.status();
  for (std::size_t v : f.value()->free_vars()) {
    if (v >= args.size()) {
      return Status::invalid("region " + name + " uses variable '" +
                             local.name_of(v) +
                             "' that is not an argument");
    }
  }
  return db_.add_constraint_relation(name, args.size(), f.value());
}

Result<FormulaPtr> ConstraintDatabase::parse(const std::string& text) {
  return parse_formula(text, &vars_);
}

Result<bool> ConstraintDatabase::holds(
    const FormulaPtr& f,
    const std::vector<std::pair<std::string, Rational>>& bindings) const {
  std::map<std::size_t, Rational> assignment;
  for (const auto& [name, value] : bindings) {
    int idx = vars_.find(name);
    if (idx < 0) {
      return Status::invalid("unknown variable in binding: " + name);
    }
    assignment[static_cast<std::size_t>(idx)] = value;
  }
  return db_.holds(f, assignment);
}

}  // namespace cqa
