// The top-level constraint database: named variables, text-syntax queries,
// finite tables and constraint-defined regions in one object.
//
// This is the facade a downstream user programs against; the lower layers
// (cqa/logic, cqa/constraint, cqa/volume, cqa/aggregate, cqa/approx) stay
// available for power users.

#ifndef CQA_CORE_CONSTRAINT_DATABASE_H_
#define CQA_CORE_CONSTRAINT_DATABASE_H_

#include <string>
#include <vector>

#include "cqa/aggregate/database.h"
#include "cqa/logic/parser.h"

namespace cqa {

/// A constraint database with a shared named-variable space.
///
/// Region definitions use the parser's formula syntax with argument
/// variables named by the caller, e.g.
///
///   ConstraintDatabase db;
///   db.add_region("Parcel", {"x", "y"}, "0 <= x & x <= 2 & 0 <= y & y <= 1");
///   db.add_table("Owner", {{1, 100}, {2, 200}});
class ConstraintDatabase {
 public:
  /// Adds a finite relation from rational tuples.
  Status add_table(const std::string& name, std::vector<RVec> tuples);
  /// Convenience: integer tuples.
  Status add_table(const std::string& name,
                   const std::vector<std::vector<std::int64_t>>& tuples);

  /// Adds a finite relation with bag (multiset) semantics.
  Status add_bag_table(const std::string& name, std::vector<RVec> tuples);
  Status add_bag_table(const std::string& name,
                       const std::vector<std::vector<std::int64_t>>& tuples);

  /// Adds a finitely representable relation. `args` names the argument
  /// slots (in order); `formula` may use only those variables.
  Status add_region(const std::string& name,
                    const std::vector<std::string>& args,
                    const std::string& formula);

  /// Parses a query in this database's variable space.
  Result<FormulaPtr> parse(const std::string& text);
  /// Index of a named variable (allocating if new).
  std::size_t var(const std::string& name) { return vars_.index_of(name); }
  /// The variable table (shared across all parses).
  VarTable& vars() { return vars_; }
  const VarTable& vars() const { return vars_; }

  /// The underlying database (for the lower-level engines).
  const Database& db() const { return db_; }

  /// Exact membership of a tuple in a relation.
  bool contains(const std::string& relation, const RVec& tuple) const {
    return db_.contains(relation, tuple);
  }

  /// Truth of a formula under named-variable bindings.
  Result<bool> holds(const FormulaPtr& f,
                     const std::vector<std::pair<std::string, Rational>>&
                         bindings) const;

 private:
  Database db_;
  VarTable vars_;
};

}  // namespace cqa

#endif  // CQA_CORE_CONSTRAINT_DATABASE_H_
