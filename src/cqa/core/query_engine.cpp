#include "cqa/core/query_engine.h"

#include "cqa/logic/printer.h"
#include "cqa/logic/transform.h"

namespace cqa {

Result<std::vector<LinearCell>> QueryEngine::cells(
    const std::string& query, const std::vector<std::string>& output_vars,
    const RewriteOptions& options) {
  auto rewritten = rewrite(query, options);
  if (!rewritten.is_ok()) return rewritten.status();
  FormulaPtr qf = rewritten.value();
  // Remap the named outputs onto slots 0..k-1.
  std::map<std::size_t, Polynomial> sub;
  std::set<std::size_t> outputs;
  for (std::size_t i = 0; i < output_vars.size(); ++i) {
    int idx = const_cast<ConstraintDatabase*>(db_)->vars().find(
        output_vars[i]);
    if (idx < 0) {
      return Status::invalid("unknown output variable: " + output_vars[i]);
    }
    sub.emplace(static_cast<std::size_t>(idx), Polynomial::variable(i));
    outputs.insert(static_cast<std::size_t>(idx));
  }
  for (std::size_t v : qf->free_vars()) {
    if (!outputs.count(v)) {
      return Status::invalid("query has a free variable that is not an "
                             "output: " +
                             db_->vars().name_of(v));
    }
  }
  if (options.cancel != nullptr) {
    CQA_RETURN_IF_ERROR(options.cancel->check());
  }
  FormulaPtr remapped = substitute_vars(qf, sub);
  return formula_to_cells(remapped, output_vars.size());
}

Result<std::string> QueryEngine::canonical_key(const std::string& query) {
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(query);
  if (!parsed.is_ok()) return parsed.status();
  return to_string(parsed.value());
}

Result<FormulaPtr> QueryEngine::rewrite(const std::string& query,
                                        const RewriteOptions& options) {
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(query);
  if (!parsed.is_ok()) return parsed;
  const bool use_cache = cache_ != nullptr && !options.skip_cache;
  std::string key;
  if (use_cache) {
    key = "qe|" + to_string(parsed.value());
    if (auto hit = cache_->lookup(key)) return *hit;
  }
  if (options.cancel != nullptr) {
    CQA_RETURN_IF_ERROR(options.cancel->check());
  }
  auto expanded = db_->db().expand_active_domain(parsed.value());
  if (!expanded.is_ok()) return expanded;
  auto inlined = db_->db().inline_predicates(expanded.value());
  if (!inlined.is_ok()) return inlined;
  FormulaPtr g = inlined.value();
  if (!g->is_quantifier_free()) {
    if (!g->is_linear()) {
      return Status::unsupported(
          "rewrite: query is nonlinear and quantified; only FO+LIN queries "
          "admit quantifier elimination here");
    }
    if (options.cancel != nullptr) {
      CQA_RETURN_IF_ERROR(options.cancel->check());
    }
    auto eliminated = qe_linear(g, options.meter);
    if (!eliminated.is_ok()) return eliminated;
    g = eliminated.value();
  }
  // A metered rewrite only reaches here complete (a trip returned
  // above), so the result is safe to share through the cache.
  if (use_cache) cache_->store(key, g);
  return g;
}

Result<bool> QueryEngine::ask(const std::string& sentence,
                              const RewriteOptions& options) {
  auto parsed = const_cast<ConstraintDatabase*>(db_)->parse(sentence);
  if (!parsed.is_ok()) return parsed.status();
  if (!parsed.value()->free_vars().empty()) {
    return Status::invalid("ask: sentence has free variables");
  }
  if (options.cancel != nullptr) {
    CQA_RETURN_IF_ERROR(options.cancel->check());
  }
  return db_->db().holds(parsed.value(), {});
}

}  // namespace cqa
