// Volume computation with strategy selection: the paper's landscape in
// one API. Exact strategies apply to semi-linear queries; approximate
// ones extend to the polynomial world exactly as Sections 3-6 lay out.

#ifndef CQA_CORE_VOLUME_ENGINE_H_
#define CQA_CORE_VOLUME_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "cqa/core/query_engine.h"
#include "cqa/poly/univariate.h"

namespace cqa {

/// How to compute (or approximate) a volume.
enum class VolumeStrategy {
  kAuto,                // exact sweep with fast paths (default)
  kExactSweep,          // Theorem-3 sweep, fast paths disabled
  kInclusionExclusion,  // exact, exponential in cell count
  kVariableIndependent, // exact, requires the [11] box shape
  kMonteCarlo,          // Theorem-4 sampling (eps, delta)
  kEllipsoidBounds,     // Lowner-John relative bounds (convex only)
  kTrivialHalf,         // Proposition-4 trivial approximation
  kHitAndRun,           // DFK multiphase hit-and-run (convex only)
};

/// A volume answer: exact rational when the strategy is exact, otherwise
/// an estimate (possibly with hard lower/upper bounds). `degraded` marks
/// a best-so-far answer produced under an expired deadline; the
/// lower/upper bars are widened accordingly.
struct VolumeAnswer {
  std::optional<Rational> exact;
  std::optional<double> estimate;
  std::optional<double> lower;
  std::optional<double> upper;
  bool degraded = false;
  std::size_t points_evaluated = 0;  // MC points actually counted
  std::size_t points_requested = 0;  // full sample size M (MC only)

  double value() const {
    if (exact) return exact->to_double();
    if (estimate) return *estimate;
    if (lower && upper) return (*lower + *upper) / 2;
    return 0;
  }
};

/// Options for volume computation. One struct for every strategy; the
/// strategy-specific knobs are ignored by the strategies that do not
/// read them.
struct VolumeOptions {
  VolumeStrategy strategy = VolumeStrategy::kAuto;
  double epsilon = 0.05;
  double delta = 0.05;
  double vc_dim = 4.0;
  std::uint64_t seed = 1;
  /// Restrict to [0,1]^k first (the paper's VOL_I). Exact strategies
  /// require the query to be bounded when this is false.
  bool clip_to_unit_box = false;
  /// Caps the Monte-Carlo sample size below the Blumer bound (0 = use
  /// the bound). A cap that bites widens the effective epsilon.
  std::size_t max_mc_samples = 0;
  /// Samples per phase of the kHitAndRun estimator.
  std::size_t hit_and_run_samples = 4000;
  /// Cooperative cancellation / deadline, polled in every strategy's
  /// hot loop. Not owned; may be null.
  const CancelToken* cancel = nullptr;
  /// Resource meter charged by the exact pipeline (QE rewrite, sweep
  /// sections, BigInt bit-lengths via the thread binding); a quota trip
  /// surfaces as kResourceExhausted. Not owned; may be null.
  guard::WorkMeter* meter = nullptr;
};

/// Memo-cache hook for exact volume results (same pattern as
/// RewriteCache: the runtime layer implements and installs it).
class VolumeCache {
 public:
  virtual ~VolumeCache() = default;
  virtual std::optional<Rational> lookup(const std::string& key) = 0;
  virtual void store(const std::string& key, const Rational& value) = 0;
};

/// Volume façade.
class VolumeEngine {
 public:
  explicit VolumeEngine(const ConstraintDatabase* db)
      : db_(db), queries_(db) {}

  /// Installs a memo-cache for exact volume results (nullptr disables).
  /// Approximate strategies are never cached. Not owned.
  void set_cache(VolumeCache* cache) { cache_ = cache; }

  /// The engine's query pipeline (e.g. to install a RewriteCache on it).
  QueryEngine& queries() { return queries_; }

  /// Volume of the query's denotation over the named output variables.
  Result<VolumeAnswer> volume(const std::string& query,
                              const std::vector<std::string>& output_vars,
                              const VolumeOptions& options = {});

  /// The Chomicki-Kuper measure-at-infinity of the (possibly unbounded)
  /// denotation: lim Vol(S cap [-r,r]^n) / (2r)^n. Zero on every bounded
  /// set -- the paper's reason mu cannot express volume.
  Result<Rational> mu(const std::string& query,
                      const std::vector<std::string>& output_vars);

  /// The eventual growth polynomial V(r) = Vol(S cap [-r,r]^n).
  Result<UPoly> growth_polynomial(const std::string& query,
                                  const std::vector<std::string>&
                                      output_vars);

 private:
  const ConstraintDatabase* db_;
  QueryEngine queries_;
  VolumeCache* cache_ = nullptr;
};

}  // namespace cqa

#endif  // CQA_CORE_VOLUME_ENGINE_H_
