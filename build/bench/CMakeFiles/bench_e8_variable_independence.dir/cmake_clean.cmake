file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_variable_independence.dir/bench_e8_variable_independence.cpp.o"
  "CMakeFiles/bench_e8_variable_independence.dir/bench_e8_variable_independence.cpp.o.d"
  "bench_e8_variable_independence"
  "bench_e8_variable_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_variable_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
