# Empty compiler generated dependencies file for bench_e8_variable_independence.
# This may be replaced when dependencies are built.
