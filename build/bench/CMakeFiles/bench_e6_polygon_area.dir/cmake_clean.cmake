file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_polygon_area.dir/bench_e6_polygon_area.cpp.o"
  "CMakeFiles/bench_e6_polygon_area.dir/bench_e6_polygon_area.cpp.o.d"
  "bench_e6_polygon_area"
  "bench_e6_polygon_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_polygon_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
