# Empty compiler generated dependencies file for bench_e6_polygon_area.
# This may be replaced when dependencies are built.
