file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_blowup.dir/bench_e1_blowup.cpp.o"
  "CMakeFiles/bench_e1_blowup.dir/bench_e1_blowup.cpp.o.d"
  "bench_e1_blowup"
  "bench_e1_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
