# Empty dependencies file for bench_e1_blowup.
# This may be replaced when dependencies are built.
