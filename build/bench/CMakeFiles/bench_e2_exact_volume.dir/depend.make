# Empty dependencies file for bench_e2_exact_volume.
# This may be replaced when dependencies are built.
