file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_exact_volume.dir/bench_e2_exact_volume.cpp.o"
  "CMakeFiles/bench_e2_exact_volume.dir/bench_e2_exact_volume.cpp.o.d"
  "bench_e2_exact_volume"
  "bench_e2_exact_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_exact_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
