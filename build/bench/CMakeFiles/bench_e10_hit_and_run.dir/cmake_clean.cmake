file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_hit_and_run.dir/bench_e10_hit_and_run.cpp.o"
  "CMakeFiles/bench_e10_hit_and_run.dir/bench_e10_hit_and_run.cpp.o.d"
  "bench_e10_hit_and_run"
  "bench_e10_hit_and_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_hit_and_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
