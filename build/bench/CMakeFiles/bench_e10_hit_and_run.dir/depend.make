# Empty dependencies file for bench_e10_hit_and_run.
# This may be replaced when dependencies are built.
