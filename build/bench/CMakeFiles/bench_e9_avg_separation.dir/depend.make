# Empty dependencies file for bench_e9_avg_separation.
# This may be replaced when dependencies are built.
