# Empty compiler generated dependencies file for bench_e3_mc_bounds.
# This may be replaced when dependencies are built.
