file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_mc_bounds.dir/bench_e3_mc_bounds.cpp.o"
  "CMakeFiles/bench_e3_mc_bounds.dir/bench_e3_mc_bounds.cpp.o.d"
  "bench_e3_mc_bounds"
  "bench_e3_mc_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_mc_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
