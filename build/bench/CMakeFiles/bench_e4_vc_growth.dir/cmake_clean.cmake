file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_vc_growth.dir/bench_e4_vc_growth.cpp.o"
  "CMakeFiles/bench_e4_vc_growth.dir/bench_e4_vc_growth.cpp.o.d"
  "bench_e4_vc_growth"
  "bench_e4_vc_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_vc_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
