# Empty compiler generated dependencies file for bench_e4_vc_growth.
# This may be replaced when dependencies are built.
