# Empty compiler generated dependencies file for bench_e11_ac0_separation.
# This may be replaced when dependencies are built.
