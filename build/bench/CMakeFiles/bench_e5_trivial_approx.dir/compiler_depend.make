# Empty compiler generated dependencies file for bench_e5_trivial_approx.
# This may be replaced when dependencies are built.
