file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_trivial_approx.dir/bench_e5_trivial_approx.cpp.o"
  "CMakeFiles/bench_e5_trivial_approx.dir/bench_e5_trivial_approx.cpp.o.d"
  "bench_e5_trivial_approx"
  "bench_e5_trivial_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_trivial_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
