# Empty dependencies file for bench_e7_ellipsoid.
# This may be replaced when dependencies are built.
