file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_ellipsoid.dir/bench_e7_ellipsoid.cpp.o"
  "CMakeFiles/bench_e7_ellipsoid.dir/bench_e7_ellipsoid.cpp.o.d"
  "bench_e7_ellipsoid"
  "bench_e7_ellipsoid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_ellipsoid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
