# Empty dependencies file for property_parser_test.
# This may be replaced when dependencies are built.
