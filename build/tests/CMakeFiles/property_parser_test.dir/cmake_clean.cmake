file(REMOVE_RECURSE
  "CMakeFiles/property_parser_test.dir/property_parser_test.cpp.o"
  "CMakeFiles/property_parser_test.dir/property_parser_test.cpp.o.d"
  "property_parser_test"
  "property_parser_test.pdb"
  "property_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
