# Empty compiler generated dependencies file for poly_roots_test.
# This may be replaced when dependencies are built.
