file(REMOVE_RECURSE
  "CMakeFiles/poly_roots_test.dir/poly_roots_test.cpp.o"
  "CMakeFiles/poly_roots_test.dir/poly_roots_test.cpp.o.d"
  "poly_roots_test"
  "poly_roots_test.pdb"
  "poly_roots_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_roots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
