# Empty compiler generated dependencies file for aggregate_sum_parser_test.
# This may be replaced when dependencies are built.
