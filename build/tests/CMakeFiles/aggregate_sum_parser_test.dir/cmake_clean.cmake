file(REMOVE_RECURSE
  "CMakeFiles/aggregate_sum_parser_test.dir/aggregate_sum_parser_test.cpp.o"
  "CMakeFiles/aggregate_sum_parser_test.dir/aggregate_sum_parser_test.cpp.o.d"
  "aggregate_sum_parser_test"
  "aggregate_sum_parser_test.pdb"
  "aggregate_sum_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_sum_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
