file(REMOVE_RECURSE
  "CMakeFiles/volume_growth_test.dir/volume_growth_test.cpp.o"
  "CMakeFiles/volume_growth_test.dir/volume_growth_test.cpp.o.d"
  "volume_growth_test"
  "volume_growth_test.pdb"
  "volume_growth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_growth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
