file(REMOVE_RECURSE
  "CMakeFiles/property_volume_test.dir/property_volume_test.cpp.o"
  "CMakeFiles/property_volume_test.dir/property_volume_test.cpp.o.d"
  "property_volume_test"
  "property_volume_test.pdb"
  "property_volume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
