# Empty compiler generated dependencies file for property_volume_test.
# This may be replaced when dependencies are built.
