file(REMOVE_RECURSE
  "CMakeFiles/mixed_fragment_test.dir/mixed_fragment_test.cpp.o"
  "CMakeFiles/mixed_fragment_test.dir/mixed_fragment_test.cpp.o.d"
  "mixed_fragment_test"
  "mixed_fragment_test.pdb"
  "mixed_fragment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_fragment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
