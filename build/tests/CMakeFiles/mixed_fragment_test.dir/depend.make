# Empty dependencies file for mixed_fragment_test.
# This may be replaced when dependencies are built.
