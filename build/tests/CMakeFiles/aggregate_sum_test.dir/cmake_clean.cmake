file(REMOVE_RECURSE
  "CMakeFiles/aggregate_sum_test.dir/aggregate_sum_test.cpp.o"
  "CMakeFiles/aggregate_sum_test.dir/aggregate_sum_test.cpp.o.d"
  "aggregate_sum_test"
  "aggregate_sum_test.pdb"
  "aggregate_sum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_sum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
