file(REMOVE_RECURSE
  "CMakeFiles/property_geometry_test.dir/property_geometry_test.cpp.o"
  "CMakeFiles/property_geometry_test.dir/property_geometry_test.cpp.o.d"
  "property_geometry_test"
  "property_geometry_test.pdb"
  "property_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
