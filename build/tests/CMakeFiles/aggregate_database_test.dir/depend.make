# Empty dependencies file for aggregate_database_test.
# This may be replaced when dependencies are built.
