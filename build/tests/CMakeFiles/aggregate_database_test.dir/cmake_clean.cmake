file(REMOVE_RECURSE
  "CMakeFiles/aggregate_database_test.dir/aggregate_database_test.cpp.o"
  "CMakeFiles/aggregate_database_test.dir/aggregate_database_test.cpp.o.d"
  "aggregate_database_test"
  "aggregate_database_test.pdb"
  "aggregate_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
