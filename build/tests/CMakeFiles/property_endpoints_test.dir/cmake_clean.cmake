file(REMOVE_RECURSE
  "CMakeFiles/property_endpoints_test.dir/property_endpoints_test.cpp.o"
  "CMakeFiles/property_endpoints_test.dir/property_endpoints_test.cpp.o.d"
  "property_endpoints_test"
  "property_endpoints_test.pdb"
  "property_endpoints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_endpoints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
