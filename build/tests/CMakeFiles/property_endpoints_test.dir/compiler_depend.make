# Empty compiler generated dependencies file for property_endpoints_test.
# This may be replaced when dependencies are built.
