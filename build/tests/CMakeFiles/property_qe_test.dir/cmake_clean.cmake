file(REMOVE_RECURSE
  "CMakeFiles/property_qe_test.dir/property_qe_test.cpp.o"
  "CMakeFiles/property_qe_test.dir/property_qe_test.cpp.o.d"
  "property_qe_test"
  "property_qe_test.pdb"
  "property_qe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_qe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
