# Empty dependencies file for property_qe_test.
# This may be replaced when dependencies are built.
