# Empty dependencies file for poly_univariate_test.
# This may be replaced when dependencies are built.
