file(REMOVE_RECURSE
  "CMakeFiles/poly_univariate_test.dir/poly_univariate_test.cpp.o"
  "CMakeFiles/poly_univariate_test.dir/poly_univariate_test.cpp.o.d"
  "poly_univariate_test"
  "poly_univariate_test.pdb"
  "poly_univariate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_univariate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
