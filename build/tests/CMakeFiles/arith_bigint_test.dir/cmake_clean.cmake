file(REMOVE_RECURSE
  "CMakeFiles/arith_bigint_test.dir/arith_bigint_test.cpp.o"
  "CMakeFiles/arith_bigint_test.dir/arith_bigint_test.cpp.o.d"
  "arith_bigint_test"
  "arith_bigint_test.pdb"
  "arith_bigint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arith_bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
