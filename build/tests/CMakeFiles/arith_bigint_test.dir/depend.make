# Empty dependencies file for arith_bigint_test.
# This may be replaced when dependencies are built.
