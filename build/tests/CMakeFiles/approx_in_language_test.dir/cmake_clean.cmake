file(REMOVE_RECURSE
  "CMakeFiles/approx_in_language_test.dir/approx_in_language_test.cpp.o"
  "CMakeFiles/approx_in_language_test.dir/approx_in_language_test.cpp.o.d"
  "approx_in_language_test"
  "approx_in_language_test.pdb"
  "approx_in_language_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_in_language_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
