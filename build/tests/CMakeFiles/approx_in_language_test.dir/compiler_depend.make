# Empty compiler generated dependencies file for approx_in_language_test.
# This may be replaced when dependencies are built.
