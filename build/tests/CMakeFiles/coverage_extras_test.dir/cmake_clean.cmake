file(REMOVE_RECURSE
  "CMakeFiles/coverage_extras_test.dir/coverage_extras_test.cpp.o"
  "CMakeFiles/coverage_extras_test.dir/coverage_extras_test.cpp.o.d"
  "coverage_extras_test"
  "coverage_extras_test.pdb"
  "coverage_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
