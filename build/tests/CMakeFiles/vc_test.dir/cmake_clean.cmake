file(REMOVE_RECURSE
  "CMakeFiles/vc_test.dir/vc_test.cpp.o"
  "CMakeFiles/vc_test.dir/vc_test.cpp.o.d"
  "vc_test"
  "vc_test.pdb"
  "vc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
