
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vc_test.cpp" "tests/CMakeFiles/vc_test.dir/vc_test.cpp.o" "gcc" "tests/CMakeFiles/vc_test.dir/vc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_approx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_aggregate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_volume.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
