# Empty compiler generated dependencies file for aggregate_polygon_test.
# This may be replaced when dependencies are built.
