file(REMOVE_RECURSE
  "CMakeFiles/aggregate_polygon_test.dir/aggregate_polygon_test.cpp.o"
  "CMakeFiles/aggregate_polygon_test.dir/aggregate_polygon_test.cpp.o.d"
  "aggregate_polygon_test"
  "aggregate_polygon_test.pdb"
  "aggregate_polygon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_polygon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
