file(REMOVE_RECURSE
  "CMakeFiles/logic_formula_test.dir/logic_formula_test.cpp.o"
  "CMakeFiles/logic_formula_test.dir/logic_formula_test.cpp.o.d"
  "logic_formula_test"
  "logic_formula_test.pdb"
  "logic_formula_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_formula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
