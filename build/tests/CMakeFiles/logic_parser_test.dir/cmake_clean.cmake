file(REMOVE_RECURSE
  "CMakeFiles/logic_parser_test.dir/logic_parser_test.cpp.o"
  "CMakeFiles/logic_parser_test.dir/logic_parser_test.cpp.o.d"
  "logic_parser_test"
  "logic_parser_test.pdb"
  "logic_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
