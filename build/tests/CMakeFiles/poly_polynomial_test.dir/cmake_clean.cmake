file(REMOVE_RECURSE
  "CMakeFiles/poly_polynomial_test.dir/poly_polynomial_test.cpp.o"
  "CMakeFiles/poly_polynomial_test.dir/poly_polynomial_test.cpp.o.d"
  "poly_polynomial_test"
  "poly_polynomial_test.pdb"
  "poly_polynomial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_polynomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
