# Empty dependencies file for poly_polynomial_test.
# This may be replaced when dependencies are built.
