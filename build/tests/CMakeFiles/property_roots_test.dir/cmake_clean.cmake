file(REMOVE_RECURSE
  "CMakeFiles/property_roots_test.dir/property_roots_test.cpp.o"
  "CMakeFiles/property_roots_test.dir/property_roots_test.cpp.o.d"
  "property_roots_test"
  "property_roots_test.pdb"
  "property_roots_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_roots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
