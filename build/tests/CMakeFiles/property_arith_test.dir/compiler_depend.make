# Empty compiler generated dependencies file for property_arith_test.
# This may be replaced when dependencies are built.
