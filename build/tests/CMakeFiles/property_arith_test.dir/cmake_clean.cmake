file(REMOVE_RECURSE
  "CMakeFiles/property_arith_test.dir/property_arith_test.cpp.o"
  "CMakeFiles/property_arith_test.dir/property_arith_test.cpp.o.d"
  "property_arith_test"
  "property_arith_test.pdb"
  "property_arith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_arith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
