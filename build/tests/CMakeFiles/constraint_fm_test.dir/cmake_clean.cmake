file(REMOVE_RECURSE
  "CMakeFiles/constraint_fm_test.dir/constraint_fm_test.cpp.o"
  "CMakeFiles/constraint_fm_test.dir/constraint_fm_test.cpp.o.d"
  "constraint_fm_test"
  "constraint_fm_test.pdb"
  "constraint_fm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_fm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
