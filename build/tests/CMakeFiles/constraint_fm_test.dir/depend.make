# Empty dependencies file for constraint_fm_test.
# This may be replaced when dependencies are built.
