file(REMOVE_RECURSE
  "CMakeFiles/arith_rational_test.dir/arith_rational_test.cpp.o"
  "CMakeFiles/arith_rational_test.dir/arith_rational_test.cpp.o.d"
  "arith_rational_test"
  "arith_rational_test.pdb"
  "arith_rational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arith_rational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
