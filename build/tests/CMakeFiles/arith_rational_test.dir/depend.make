# Empty dependencies file for arith_rational_test.
# This may be replaced when dependencies are built.
