file(REMOVE_RECURSE
  "CMakeFiles/constraint_qe_test.dir/constraint_qe_test.cpp.o"
  "CMakeFiles/constraint_qe_test.dir/constraint_qe_test.cpp.o.d"
  "constraint_qe_test"
  "constraint_qe_test.pdb"
  "constraint_qe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_qe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
