# Empty compiler generated dependencies file for constraint_qe_test.
# This may be replaced when dependencies are built.
