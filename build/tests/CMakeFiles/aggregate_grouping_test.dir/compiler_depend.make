# Empty compiler generated dependencies file for aggregate_grouping_test.
# This may be replaced when dependencies are built.
