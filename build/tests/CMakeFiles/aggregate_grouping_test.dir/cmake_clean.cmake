file(REMOVE_RECURSE
  "CMakeFiles/aggregate_grouping_test.dir/aggregate_grouping_test.cpp.o"
  "CMakeFiles/aggregate_grouping_test.dir/aggregate_grouping_test.cpp.o.d"
  "aggregate_grouping_test"
  "aggregate_grouping_test.pdb"
  "aggregate_grouping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
