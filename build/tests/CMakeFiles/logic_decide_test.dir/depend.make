# Empty dependencies file for logic_decide_test.
# This may be replaced when dependencies are built.
