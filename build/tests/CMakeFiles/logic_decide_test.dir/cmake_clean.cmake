file(REMOVE_RECURSE
  "CMakeFiles/logic_decide_test.dir/logic_decide_test.cpp.o"
  "CMakeFiles/logic_decide_test.dir/logic_decide_test.cpp.o.d"
  "logic_decide_test"
  "logic_decide_test.pdb"
  "logic_decide_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_decide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
