# Empty dependencies file for approx_circuit_test.
# This may be replaced when dependencies are built.
