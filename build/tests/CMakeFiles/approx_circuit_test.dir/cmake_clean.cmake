file(REMOVE_RECURSE
  "CMakeFiles/approx_circuit_test.dir/approx_circuit_test.cpp.o"
  "CMakeFiles/approx_circuit_test.dir/approx_circuit_test.cpp.o.d"
  "approx_circuit_test"
  "approx_circuit_test.pdb"
  "approx_circuit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
