# Empty dependencies file for gis_parcels.
# This may be replaced when dependencies are built.
