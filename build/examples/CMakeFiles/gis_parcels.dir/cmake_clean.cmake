file(REMOVE_RECURSE
  "CMakeFiles/gis_parcels.dir/gis_parcels.cpp.o"
  "CMakeFiles/gis_parcels.dir/gis_parcels.cpp.o.d"
  "gis_parcels"
  "gis_parcels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_parcels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
