# Empty dependencies file for sensor_aggregates.
# This may be replaced when dependencies are built.
