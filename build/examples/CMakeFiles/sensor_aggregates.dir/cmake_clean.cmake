file(REMOVE_RECURSE
  "CMakeFiles/sensor_aggregates.dir/sensor_aggregates.cpp.o"
  "CMakeFiles/sensor_aggregates.dir/sensor_aggregates.cpp.o.d"
  "sensor_aggregates"
  "sensor_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
