file(REMOVE_RECURSE
  "CMakeFiles/measure_at_infinity.dir/measure_at_infinity.cpp.o"
  "CMakeFiles/measure_at_infinity.dir/measure_at_infinity.cpp.o.d"
  "measure_at_infinity"
  "measure_at_infinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_at_infinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
