# Empty dependencies file for measure_at_infinity.
# This may be replaced when dependencies are built.
