# Empty compiler generated dependencies file for approx_volume.
# This may be replaced when dependencies are built.
