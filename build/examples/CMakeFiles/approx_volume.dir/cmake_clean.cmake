file(REMOVE_RECURSE
  "CMakeFiles/approx_volume.dir/approx_volume.cpp.o"
  "CMakeFiles/approx_volume.dir/approx_volume.cpp.o.d"
  "approx_volume"
  "approx_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
