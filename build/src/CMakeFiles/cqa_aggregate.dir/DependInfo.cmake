
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cqa/aggregate/database.cpp" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/database.cpp.o" "gcc" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/database.cpp.o.d"
  "/root/repo/src/cqa/aggregate/endpoints.cpp" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/endpoints.cpp.o" "gcc" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/endpoints.cpp.o.d"
  "/root/repo/src/cqa/aggregate/polygon_area.cpp" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/polygon_area.cpp.o" "gcc" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/polygon_area.cpp.o.d"
  "/root/repo/src/cqa/aggregate/sql_aggregates.cpp" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sql_aggregates.cpp.o" "gcc" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sql_aggregates.cpp.o.d"
  "/root/repo/src/cqa/aggregate/sum_language.cpp" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sum_language.cpp.o" "gcc" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sum_language.cpp.o.d"
  "/root/repo/src/cqa/aggregate/sum_parser.cpp" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sum_parser.cpp.o" "gcc" "src/CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sum_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqa_volume.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
