# Empty compiler generated dependencies file for cqa_aggregate.
# This may be replaced when dependencies are built.
