file(REMOVE_RECURSE
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/database.cpp.o"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/database.cpp.o.d"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/endpoints.cpp.o"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/endpoints.cpp.o.d"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/polygon_area.cpp.o"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/polygon_area.cpp.o.d"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sql_aggregates.cpp.o"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sql_aggregates.cpp.o.d"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sum_language.cpp.o"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sum_language.cpp.o.d"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sum_parser.cpp.o"
  "CMakeFiles/cqa_aggregate.dir/cqa/aggregate/sum_parser.cpp.o.d"
  "libcqa_aggregate.a"
  "libcqa_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
