file(REMOVE_RECURSE
  "libcqa_aggregate.a"
)
