
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cqa/approx/circuit.cpp" "src/CMakeFiles/cqa_approx.dir/cqa/approx/circuit.cpp.o" "gcc" "src/CMakeFiles/cqa_approx.dir/cqa/approx/circuit.cpp.o.d"
  "/root/repo/src/cqa/approx/ellipsoid.cpp" "src/CMakeFiles/cqa_approx.dir/cqa/approx/ellipsoid.cpp.o" "gcc" "src/CMakeFiles/cqa_approx.dir/cqa/approx/ellipsoid.cpp.o.d"
  "/root/repo/src/cqa/approx/gadgets.cpp" "src/CMakeFiles/cqa_approx.dir/cqa/approx/gadgets.cpp.o" "gcc" "src/CMakeFiles/cqa_approx.dir/cqa/approx/gadgets.cpp.o.d"
  "/root/repo/src/cqa/approx/hit_and_run.cpp" "src/CMakeFiles/cqa_approx.dir/cqa/approx/hit_and_run.cpp.o" "gcc" "src/CMakeFiles/cqa_approx.dir/cqa/approx/hit_and_run.cpp.o.d"
  "/root/repo/src/cqa/approx/monte_carlo.cpp" "src/CMakeFiles/cqa_approx.dir/cqa/approx/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/cqa_approx.dir/cqa/approx/monte_carlo.cpp.o.d"
  "/root/repo/src/cqa/approx/random.cpp" "src/CMakeFiles/cqa_approx.dir/cqa/approx/random.cpp.o" "gcc" "src/CMakeFiles/cqa_approx.dir/cqa/approx/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqa_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_aggregate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_volume.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
