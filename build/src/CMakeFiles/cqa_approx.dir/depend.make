# Empty dependencies file for cqa_approx.
# This may be replaced when dependencies are built.
