file(REMOVE_RECURSE
  "libcqa_approx.a"
)
