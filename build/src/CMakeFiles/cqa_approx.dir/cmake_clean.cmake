file(REMOVE_RECURSE
  "CMakeFiles/cqa_approx.dir/cqa/approx/circuit.cpp.o"
  "CMakeFiles/cqa_approx.dir/cqa/approx/circuit.cpp.o.d"
  "CMakeFiles/cqa_approx.dir/cqa/approx/ellipsoid.cpp.o"
  "CMakeFiles/cqa_approx.dir/cqa/approx/ellipsoid.cpp.o.d"
  "CMakeFiles/cqa_approx.dir/cqa/approx/gadgets.cpp.o"
  "CMakeFiles/cqa_approx.dir/cqa/approx/gadgets.cpp.o.d"
  "CMakeFiles/cqa_approx.dir/cqa/approx/hit_and_run.cpp.o"
  "CMakeFiles/cqa_approx.dir/cqa/approx/hit_and_run.cpp.o.d"
  "CMakeFiles/cqa_approx.dir/cqa/approx/monte_carlo.cpp.o"
  "CMakeFiles/cqa_approx.dir/cqa/approx/monte_carlo.cpp.o.d"
  "CMakeFiles/cqa_approx.dir/cqa/approx/random.cpp.o"
  "CMakeFiles/cqa_approx.dir/cqa/approx/random.cpp.o.d"
  "libcqa_approx.a"
  "libcqa_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
