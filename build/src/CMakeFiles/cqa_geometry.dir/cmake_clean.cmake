file(REMOVE_RECURSE
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/affine.cpp.o"
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/affine.cpp.o.d"
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/hull2d.cpp.o"
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/hull2d.cpp.o.d"
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/polyhedron.cpp.o"
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/polyhedron.cpp.o.d"
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/polytope_volume.cpp.o"
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/polytope_volume.cpp.o.d"
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/vertex_enum.cpp.o"
  "CMakeFiles/cqa_geometry.dir/cqa/geometry/vertex_enum.cpp.o.d"
  "libcqa_geometry.a"
  "libcqa_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
