file(REMOVE_RECURSE
  "libcqa_geometry.a"
)
