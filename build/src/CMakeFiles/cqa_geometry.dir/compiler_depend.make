# Empty compiler generated dependencies file for cqa_geometry.
# This may be replaced when dependencies are built.
