
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cqa/geometry/affine.cpp" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/affine.cpp.o" "gcc" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/affine.cpp.o.d"
  "/root/repo/src/cqa/geometry/hull2d.cpp" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/hull2d.cpp.o" "gcc" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/hull2d.cpp.o.d"
  "/root/repo/src/cqa/geometry/polyhedron.cpp" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/polyhedron.cpp.o" "gcc" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/polyhedron.cpp.o.d"
  "/root/repo/src/cqa/geometry/polytope_volume.cpp" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/polytope_volume.cpp.o" "gcc" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/polytope_volume.cpp.o.d"
  "/root/repo/src/cqa/geometry/vertex_enum.cpp" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/vertex_enum.cpp.o" "gcc" "src/CMakeFiles/cqa_geometry.dir/cqa/geometry/vertex_enum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqa_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
