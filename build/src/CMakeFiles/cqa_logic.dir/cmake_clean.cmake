file(REMOVE_RECURSE
  "CMakeFiles/cqa_logic.dir/cqa/logic/decide.cpp.o"
  "CMakeFiles/cqa_logic.dir/cqa/logic/decide.cpp.o.d"
  "CMakeFiles/cqa_logic.dir/cqa/logic/eval.cpp.o"
  "CMakeFiles/cqa_logic.dir/cqa/logic/eval.cpp.o.d"
  "CMakeFiles/cqa_logic.dir/cqa/logic/formula.cpp.o"
  "CMakeFiles/cqa_logic.dir/cqa/logic/formula.cpp.o.d"
  "CMakeFiles/cqa_logic.dir/cqa/logic/parser.cpp.o"
  "CMakeFiles/cqa_logic.dir/cqa/logic/parser.cpp.o.d"
  "CMakeFiles/cqa_logic.dir/cqa/logic/printer.cpp.o"
  "CMakeFiles/cqa_logic.dir/cqa/logic/printer.cpp.o.d"
  "CMakeFiles/cqa_logic.dir/cqa/logic/transform.cpp.o"
  "CMakeFiles/cqa_logic.dir/cqa/logic/transform.cpp.o.d"
  "libcqa_logic.a"
  "libcqa_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
