# Empty dependencies file for cqa_logic.
# This may be replaced when dependencies are built.
