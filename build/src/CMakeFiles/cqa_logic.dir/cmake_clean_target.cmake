file(REMOVE_RECURSE
  "libcqa_logic.a"
)
