
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cqa/logic/decide.cpp" "src/CMakeFiles/cqa_logic.dir/cqa/logic/decide.cpp.o" "gcc" "src/CMakeFiles/cqa_logic.dir/cqa/logic/decide.cpp.o.d"
  "/root/repo/src/cqa/logic/eval.cpp" "src/CMakeFiles/cqa_logic.dir/cqa/logic/eval.cpp.o" "gcc" "src/CMakeFiles/cqa_logic.dir/cqa/logic/eval.cpp.o.d"
  "/root/repo/src/cqa/logic/formula.cpp" "src/CMakeFiles/cqa_logic.dir/cqa/logic/formula.cpp.o" "gcc" "src/CMakeFiles/cqa_logic.dir/cqa/logic/formula.cpp.o.d"
  "/root/repo/src/cqa/logic/parser.cpp" "src/CMakeFiles/cqa_logic.dir/cqa/logic/parser.cpp.o" "gcc" "src/CMakeFiles/cqa_logic.dir/cqa/logic/parser.cpp.o.d"
  "/root/repo/src/cqa/logic/printer.cpp" "src/CMakeFiles/cqa_logic.dir/cqa/logic/printer.cpp.o" "gcc" "src/CMakeFiles/cqa_logic.dir/cqa/logic/printer.cpp.o.d"
  "/root/repo/src/cqa/logic/transform.cpp" "src/CMakeFiles/cqa_logic.dir/cqa/logic/transform.cpp.o" "gcc" "src/CMakeFiles/cqa_logic.dir/cqa/logic/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqa_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
