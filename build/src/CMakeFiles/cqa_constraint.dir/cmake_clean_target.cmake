file(REMOVE_RECURSE
  "libcqa_constraint.a"
)
