file(REMOVE_RECURSE
  "CMakeFiles/cqa_constraint.dir/cqa/constraint/fourier_motzkin.cpp.o"
  "CMakeFiles/cqa_constraint.dir/cqa/constraint/fourier_motzkin.cpp.o.d"
  "CMakeFiles/cqa_constraint.dir/cqa/constraint/linear_atom.cpp.o"
  "CMakeFiles/cqa_constraint.dir/cqa/constraint/linear_atom.cpp.o.d"
  "CMakeFiles/cqa_constraint.dir/cqa/constraint/linear_cell.cpp.o"
  "CMakeFiles/cqa_constraint.dir/cqa/constraint/linear_cell.cpp.o.d"
  "CMakeFiles/cqa_constraint.dir/cqa/constraint/qe.cpp.o"
  "CMakeFiles/cqa_constraint.dir/cqa/constraint/qe.cpp.o.d"
  "libcqa_constraint.a"
  "libcqa_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
