# Empty compiler generated dependencies file for cqa_constraint.
# This may be replaced when dependencies are built.
