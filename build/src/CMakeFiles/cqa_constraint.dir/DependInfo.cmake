
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cqa/constraint/fourier_motzkin.cpp" "src/CMakeFiles/cqa_constraint.dir/cqa/constraint/fourier_motzkin.cpp.o" "gcc" "src/CMakeFiles/cqa_constraint.dir/cqa/constraint/fourier_motzkin.cpp.o.d"
  "/root/repo/src/cqa/constraint/linear_atom.cpp" "src/CMakeFiles/cqa_constraint.dir/cqa/constraint/linear_atom.cpp.o" "gcc" "src/CMakeFiles/cqa_constraint.dir/cqa/constraint/linear_atom.cpp.o.d"
  "/root/repo/src/cqa/constraint/linear_cell.cpp" "src/CMakeFiles/cqa_constraint.dir/cqa/constraint/linear_cell.cpp.o" "gcc" "src/CMakeFiles/cqa_constraint.dir/cqa/constraint/linear_cell.cpp.o.d"
  "/root/repo/src/cqa/constraint/qe.cpp" "src/CMakeFiles/cqa_constraint.dir/cqa/constraint/qe.cpp.o" "gcc" "src/CMakeFiles/cqa_constraint.dir/cqa/constraint/qe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqa_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
