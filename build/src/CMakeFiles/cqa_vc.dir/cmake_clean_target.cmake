file(REMOVE_RECURSE
  "libcqa_vc.a"
)
