# Empty dependencies file for cqa_vc.
# This may be replaced when dependencies are built.
