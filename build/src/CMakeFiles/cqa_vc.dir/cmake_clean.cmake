file(REMOVE_RECURSE
  "CMakeFiles/cqa_vc.dir/cqa/vc/blowup.cpp.o"
  "CMakeFiles/cqa_vc.dir/cqa/vc/blowup.cpp.o.d"
  "CMakeFiles/cqa_vc.dir/cqa/vc/sample_bounds.cpp.o"
  "CMakeFiles/cqa_vc.dir/cqa/vc/sample_bounds.cpp.o.d"
  "CMakeFiles/cqa_vc.dir/cqa/vc/shattering.cpp.o"
  "CMakeFiles/cqa_vc.dir/cqa/vc/shattering.cpp.o.d"
  "libcqa_vc.a"
  "libcqa_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
