file(REMOVE_RECURSE
  "libcqa_poly.a"
)
