# Empty compiler generated dependencies file for cqa_poly.
# This may be replaced when dependencies are built.
