
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cqa/poly/algebraic.cpp" "src/CMakeFiles/cqa_poly.dir/cqa/poly/algebraic.cpp.o" "gcc" "src/CMakeFiles/cqa_poly.dir/cqa/poly/algebraic.cpp.o.d"
  "/root/repo/src/cqa/poly/interpolation.cpp" "src/CMakeFiles/cqa_poly.dir/cqa/poly/interpolation.cpp.o" "gcc" "src/CMakeFiles/cqa_poly.dir/cqa/poly/interpolation.cpp.o.d"
  "/root/repo/src/cqa/poly/polynomial.cpp" "src/CMakeFiles/cqa_poly.dir/cqa/poly/polynomial.cpp.o" "gcc" "src/CMakeFiles/cqa_poly.dir/cqa/poly/polynomial.cpp.o.d"
  "/root/repo/src/cqa/poly/root_isolation.cpp" "src/CMakeFiles/cqa_poly.dir/cqa/poly/root_isolation.cpp.o" "gcc" "src/CMakeFiles/cqa_poly.dir/cqa/poly/root_isolation.cpp.o.d"
  "/root/repo/src/cqa/poly/univariate.cpp" "src/CMakeFiles/cqa_poly.dir/cqa/poly/univariate.cpp.o" "gcc" "src/CMakeFiles/cqa_poly.dir/cqa/poly/univariate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
