file(REMOVE_RECURSE
  "CMakeFiles/cqa_poly.dir/cqa/poly/algebraic.cpp.o"
  "CMakeFiles/cqa_poly.dir/cqa/poly/algebraic.cpp.o.d"
  "CMakeFiles/cqa_poly.dir/cqa/poly/interpolation.cpp.o"
  "CMakeFiles/cqa_poly.dir/cqa/poly/interpolation.cpp.o.d"
  "CMakeFiles/cqa_poly.dir/cqa/poly/polynomial.cpp.o"
  "CMakeFiles/cqa_poly.dir/cqa/poly/polynomial.cpp.o.d"
  "CMakeFiles/cqa_poly.dir/cqa/poly/root_isolation.cpp.o"
  "CMakeFiles/cqa_poly.dir/cqa/poly/root_isolation.cpp.o.d"
  "CMakeFiles/cqa_poly.dir/cqa/poly/univariate.cpp.o"
  "CMakeFiles/cqa_poly.dir/cqa/poly/univariate.cpp.o.d"
  "libcqa_poly.a"
  "libcqa_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
