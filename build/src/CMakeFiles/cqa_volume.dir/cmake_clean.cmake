file(REMOVE_RECURSE
  "CMakeFiles/cqa_volume.dir/cqa/volume/growth.cpp.o"
  "CMakeFiles/cqa_volume.dir/cqa/volume/growth.cpp.o.d"
  "CMakeFiles/cqa_volume.dir/cqa/volume/inclusion_exclusion.cpp.o"
  "CMakeFiles/cqa_volume.dir/cqa/volume/inclusion_exclusion.cpp.o.d"
  "CMakeFiles/cqa_volume.dir/cqa/volume/semilinear_volume.cpp.o"
  "CMakeFiles/cqa_volume.dir/cqa/volume/semilinear_volume.cpp.o.d"
  "CMakeFiles/cqa_volume.dir/cqa/volume/variable_independence.cpp.o"
  "CMakeFiles/cqa_volume.dir/cqa/volume/variable_independence.cpp.o.d"
  "libcqa_volume.a"
  "libcqa_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
