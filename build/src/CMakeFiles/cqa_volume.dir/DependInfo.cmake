
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cqa/volume/growth.cpp" "src/CMakeFiles/cqa_volume.dir/cqa/volume/growth.cpp.o" "gcc" "src/CMakeFiles/cqa_volume.dir/cqa/volume/growth.cpp.o.d"
  "/root/repo/src/cqa/volume/inclusion_exclusion.cpp" "src/CMakeFiles/cqa_volume.dir/cqa/volume/inclusion_exclusion.cpp.o" "gcc" "src/CMakeFiles/cqa_volume.dir/cqa/volume/inclusion_exclusion.cpp.o.d"
  "/root/repo/src/cqa/volume/semilinear_volume.cpp" "src/CMakeFiles/cqa_volume.dir/cqa/volume/semilinear_volume.cpp.o" "gcc" "src/CMakeFiles/cqa_volume.dir/cqa/volume/semilinear_volume.cpp.o.d"
  "/root/repo/src/cqa/volume/variable_independence.cpp" "src/CMakeFiles/cqa_volume.dir/cqa/volume/variable_independence.cpp.o" "gcc" "src/CMakeFiles/cqa_volume.dir/cqa/volume/variable_independence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqa_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqa_arith.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
