# Empty compiler generated dependencies file for cqa_volume.
# This may be replaced when dependencies are built.
