file(REMOVE_RECURSE
  "libcqa_volume.a"
)
