# Empty compiler generated dependencies file for cqa_linalg.
# This may be replaced when dependencies are built.
