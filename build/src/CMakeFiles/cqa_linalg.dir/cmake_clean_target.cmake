file(REMOVE_RECURSE
  "libcqa_linalg.a"
)
