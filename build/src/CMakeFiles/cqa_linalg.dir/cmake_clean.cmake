file(REMOVE_RECURSE
  "CMakeFiles/cqa_linalg.dir/cqa/linalg/matrix.cpp.o"
  "CMakeFiles/cqa_linalg.dir/cqa/linalg/matrix.cpp.o.d"
  "libcqa_linalg.a"
  "libcqa_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
