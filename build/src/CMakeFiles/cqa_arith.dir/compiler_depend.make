# Empty compiler generated dependencies file for cqa_arith.
# This may be replaced when dependencies are built.
