file(REMOVE_RECURSE
  "CMakeFiles/cqa_arith.dir/cqa/arith/bigint.cpp.o"
  "CMakeFiles/cqa_arith.dir/cqa/arith/bigint.cpp.o.d"
  "CMakeFiles/cqa_arith.dir/cqa/arith/interval.cpp.o"
  "CMakeFiles/cqa_arith.dir/cqa/arith/interval.cpp.o.d"
  "CMakeFiles/cqa_arith.dir/cqa/arith/rational.cpp.o"
  "CMakeFiles/cqa_arith.dir/cqa/arith/rational.cpp.o.d"
  "libcqa_arith.a"
  "libcqa_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
