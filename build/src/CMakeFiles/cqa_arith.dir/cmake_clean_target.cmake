file(REMOVE_RECURSE
  "libcqa_arith.a"
)
