# Empty dependencies file for cqa_core.
# This may be replaced when dependencies are built.
