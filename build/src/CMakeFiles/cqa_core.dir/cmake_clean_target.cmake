file(REMOVE_RECURSE
  "libcqa_core.a"
)
