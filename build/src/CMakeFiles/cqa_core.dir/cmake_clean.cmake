file(REMOVE_RECURSE
  "CMakeFiles/cqa_core.dir/cqa/core/aggregation_engine.cpp.o"
  "CMakeFiles/cqa_core.dir/cqa/core/aggregation_engine.cpp.o.d"
  "CMakeFiles/cqa_core.dir/cqa/core/constraint_database.cpp.o"
  "CMakeFiles/cqa_core.dir/cqa/core/constraint_database.cpp.o.d"
  "CMakeFiles/cqa_core.dir/cqa/core/query_engine.cpp.o"
  "CMakeFiles/cqa_core.dir/cqa/core/query_engine.cpp.o.d"
  "CMakeFiles/cqa_core.dir/cqa/core/volume_engine.cpp.o"
  "CMakeFiles/cqa_core.dir/cqa/core/volume_engine.cpp.o.d"
  "libcqa_core.a"
  "libcqa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
