// Serving across processes: spin up a sharded cqa_served fleet
// in-process, talk to it over a unix socket, and watch the degradation
// ladder hold across the wire.
//
// The same Request/Answer values used with a local Session travel the
// binary protocol unchanged: answers keep their error bars, plan choice,
// degradation status, and guard report. Duplicate-heavy traffic routes
// by fingerprint to one shard (so it coalesces there) and full-fidelity
// answers persist in the disk cache across server restarts.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "cqa/served/client.h"
#include "cqa/served/server.h"

using namespace cqa;

namespace {

void show(const char* label, const Result<Answer>& result) {
  if (!result.is_ok()) {
    std::printf("%-28s -> %s\n", label, result.status().to_string().c_str());
    return;
  }
  const Answer& a = result.value();
  if (a.kind == RequestKind::kVolume) {
    if (a.volume.exact) {
      std::printf("%-28s -> vol %.4f (exact)\n", label, a.volume.value());
      return;
    }
    std::printf("%-28s -> vol %.4f in [%.4f, %.4f]%s%s\n", label,
                a.volume.value(), a.volume.lower.value_or(0.0),
                a.volume.upper.value_or(1.0),
                a.degraded() ? " (degraded)" : "",
                a.guard.shed ? " [shed]" : "");
  } else if (a.kind == RequestKind::kAsk) {
    std::printf("%-28s -> %s\n", label,
                a.truth.value_or(false) ? "true" : "false");
  }
}

}  // namespace

int main() {
  const std::string sock =
      "/tmp/cqa_served_example." + std::to_string(getpid()) + ".sock";
  const std::string cache =
      "/tmp/cqa_served_example." + std::to_string(getpid()) + ".cache";

  served::ServedOptions options;
  options.workers = 2;
  options.unix_path = sock;
  options.cache_path = cache;
  served::Server server(options);
  if (!server.start().is_ok()) {
    std::printf("failed to start fleet\n");
    return 1;
  }
  std::printf("fleet up: %zu workers behind unix:%s\n\n",
              server.worker_count(), sock.c_str());

  {
    auto connected = served::Client::connect_unix(sock);
    CQA_CHECK(connected.is_ok());
    served::Client client = std::move(connected).take();

    // A decision, an exact volume, and a pinned Monte-Carlo estimate --
    // one protocol, full answers.
    show("ask E x. x^2 = 2",
         client.call(Request::ask("E x. x * x = 2")));
    show("vol quarter square",
         client.call(Request::volume("0 <= x & x <= 1/2 & 0 <= y & y <= 1/2")
                         .vars({"x", "y"})));
    Request mc = Request::volume("x^2 + y^2 <= 9/10")
                     .vars({"x", "y"})
                     .strategy(VolumeStrategy::kMonteCarlo)
                     .epsilon(0.05)
                     .vc_dim(3.0)
                     .seed(7);
    show("vol disc (MC, seed 7)", client.call(mc));
    // The identical request again: served from the persistent result
    // cache at the router without touching a worker.
    show("vol disc (repeat)", client.call(mc));
    std::printf("\ncache hits so far: %llu\n\n",
                static_cast<unsigned long long>(server.stats().cache_hits));
  }

  // Restart the whole fleet: the disk cache survives, so the hot set
  // does not recompute.
  server.stop();
  served::Server second(options);
  second.start().is_ok();
  {
    auto connected = served::Client::connect_unix(sock);
    CQA_CHECK(connected.is_ok());
    served::Client client = std::move(connected).take();
    Request mc = Request::volume("x^2 + y^2 <= 9/10")
                     .vars({"x", "y"})
                     .strategy(VolumeStrategy::kMonteCarlo)
                     .epsilon(0.05)
                     .vc_dim(3.0)
                     .seed(7);
    show("vol disc (after restart)", client.call(mc));
    std::printf("\nrestarted fleet served it from disk: %llu hit(s)\n",
                static_cast<unsigned long long>(second.stats().cache_hits));
  }
  second.stop();
  unlink(cache.c_str());
  unlink((cache + ".volumes.shard0").c_str());
  unlink((cache + ".volumes.shard1").c_str());
  return 0;
}
