// The concurrent runtime in one example: a Session owns a work-stealing
// thread pool, a sharded LRU memo-cache, a metrics registry, and the
// adaptive planner behind Session::run(Request) -> Result<Answer>.
//
// Build & run:  ./build/examples/runtime_session

#include <cstdio>

#include "cqa/runtime/session.h"

int main() {
  using namespace cqa;
  ConstraintDatabase db;
  db.add_region("Parcel", {"x", "y"},
                "0 <= x & x <= 2 & 0 <= y & y <= 1");
  db.add_region("Flood", {"x", "y"}, "1/4 <= y & y <= 3/4");

  Session session(&db);  // pool + cache + metrics, defaults sized to HW
  std::printf("session pool: %zu worker(s)\n\n", session.pool().size());

  // Exact volume (Theorem 3 engine) -- the second call is a cache hit.
  Request req;
  req.kind = RequestKind::kVolume;
  req.query = "Parcel(x, y) & Flood(x, y)";
  req.output_vars = {"x", "y"};
  for (int round = 1; round <= 2; ++round) {
    auto a = session.run(req).value_or_die();
    std::printf("round %d: exact flooded area = %s   (volume-cache hits "
                "so far: %llu)\n",
                round, a.volume.exact->to_string().c_str(),
                static_cast<unsigned long long>(
                    session.cache().volume_stats().hits));
  }

  // A nonlinear query through the SAME entry point: the planner sees
  // there is no exact cell decomposition and routes to Theorem-4
  // Monte-Carlo, chunked across the pool (estimates are bitwise
  // identical at any thread count).
  req.query = "x^2 + y^2 <= 1";
  req.budget.epsilon = 0.05;
  req.seed = 7;
  auto disk = session.run(req).value_or_die();
  std::printf("\nMC quarter-disk area ~ %.4f (pi/4 ~ 0.7854), planner "
              "chose: %s\n",
              *disk.volume.estimate, strategy_name(disk.plan->chosen));

  // Deadline-aware degradation: an epsilon this tight wants ~10^6
  // points; 2 ms affords a fraction. The answer comes back Degraded
  // with honest (Hoeffding-widened) bars instead of failing.
  req.budget.epsilon = 0.0005;
  req.budget.deadline_ms = 2;
  auto rushed = session.run(req).value_or_die();
  std::printf("2ms budget: status=%s estimate=%.4f bars=[%.4f, %.4f] "
              "points=%zu/%zu\n",
              rushed.degraded() ? "Degraded" : "Ok",
              rushed.volume.estimate.value_or(0.5),
              rushed.volume.lower.value_or(0.0),
              rushed.volume.upper.value_or(1.0),
              rushed.volume.points_evaluated,
              rushed.volume.points_requested);

  // Rewrites are memoized under canonical-formula keys: a different
  // spelling of the same query is still a hit.
  Request rw;
  rw.kind = RequestKind::kRewrite;
  rw.query = "E y. Parcel(x, y)";
  session.run(rw).value_or_die();
  rw.query = "E y.  Parcel( x , y )";
  session.run(rw).value_or_die();

  std::printf("\n-- metrics --\n%s", session.metrics_dump().c_str());
  return 0;
}
