// The concurrent runtime in one example: a Session owns a work-stealing
// thread pool, a sharded LRU memo-cache, and a metrics registry, and
// exposes the familiar engine APIs. Opting in is one line -- construct
// a Session instead of the individual engines.
//
// Build & run:  ./build/examples/runtime_session

#include <cstdio>

#include "cqa/runtime/session.h"

int main() {
  using namespace cqa;
  ConstraintDatabase db;
  db.add_region("Parcel", {"x", "y"},
                "0 <= x & x <= 2 & 0 <= y & y <= 1");
  db.add_region("Flood", {"x", "y"}, "1/4 <= y & y <= 3/4");

  Session session(&db);  // pool + cache + metrics, defaults sized to HW
  std::printf("session pool: %zu worker(s)\n\n", session.pool().size());

  // Exact volume (Theorem 3 engine) -- the second call is a cache hit.
  for (int round = 1; round <= 2; ++round) {
    auto a = session.volume("Parcel(x, y) & Flood(x, y)", {"x", "y"});
    std::printf("round %d: exact flooded area = %s   (volume-cache hits "
                "so far: %llu)\n",
                round, a.value_or_die().exact->to_string().c_str(),
                static_cast<unsigned long long>(
                    session.cache().volume_stats().hits));
  }

  // Monte-Carlo volume (Theorem 4) runs chunked across the pool; the
  // estimate is bitwise identical at any thread count.
  VolumeOptions mc;
  mc.strategy = VolumeStrategy::kMonteCarlo;
  mc.epsilon = 0.05;
  mc.vc_dim = 3.0;
  mc.seed = 7;
  auto disk = session.volume("x^2 + y^2 <= 1", {"x", "y"}, mc);
  std::printf("\nMC quarter-disk area ~ %.4f (pi/4 ~ 0.7854)\n",
              *disk.value_or_die().estimate);

  // Rewrites are memoized under canonical-formula keys: a different
  // spelling of the same query is still a hit.
  session.rewrite("E y. Parcel(x, y)").value_or_die();
  session.rewrite("E y.  Parcel( x , y )").value_or_die();

  std::printf("\n-- metrics --\n%s", session.metrics_dump().c_str());
  return 0;
}
