// Approximate volume of semi-algebraic sets (Theorem 4 in action).
//
// Exact volume of polynomial-constraint sets is impossible inside the
// language (Sections 3-4); the paper's positive answer is FO+POLY+SUM+W:
// draw one VC-bounded sample and count. This example approximates volumes
// of genuinely nonlinear sets, shows the uniform-over-parameters property,
// and compares against the Lowner-John bounds on a convex body.
//
// Build & run:  ./build/examples/approx_volume

#include <cmath>
#include <cstdio>

#include "cqa/approx/ellipsoid.h"
#include "cqa/approx/hit_and_run.h"
#include "cqa/approx/monte_carlo.h"
#include "cqa/runtime/session.h"
#include "cqa/vc/sample_bounds.h"

int main() {
  using namespace cqa;
  ConstraintDatabase db;

  std::printf("== Theorem 4: one sample, eps-accuracy for ALL parameters "
              "==\n");
  const double eps = 0.02, delta = 0.05, vc_dim = 3.0;
  const std::size_t m = blumer_sample_bound(eps, delta, vc_dim);
  std::printf("  Blumer bound: eps=%.2f delta=%.2f d=%.0f -> M = %zu\n",
              eps, delta, vc_dim, m);

  // Family phi(a; x, y) = { (x,y) : x^2 + y^2 <= a } over parameter a.
  auto phi = db.parse("x^2 + y^2 <= a").value_or_die();
  const std::size_t ax = db.var("x"), ay = db.var("y"), aa = db.var("a");
  McVolumeEstimator est(&db.db(), phi, {ax, ay}, m, /*seed=*/2718);
  double sup_err = 0;
  for (int i = 1; i <= 9; ++i) {
    const double a = i / 10.0;
    const double exact = M_PI * a / 4.0;  // quarter disk of radius sqrt(a)
    const double got =
        est.estimate({{aa, Rational(i, 10)}}).value_or_die();
    sup_err = std::fmax(sup_err, std::fabs(got - exact));
    std::printf("  a=%.1f   VOL_I=%-8.5f estimate=%-8.5f err=%.5f\n", a,
                exact, got, std::fabs(got - exact));
  }
  std::printf("  sup error over the family: %.5f (target eps = %.2f)\n\n",
              sup_err, eps);

  std::printf("== nonlinear sets with known volumes ==\n");
  struct Case {
    const char* name;
    const char* formula;
    double exact;
  } cases[] = {
      {"quarter disk", "x^2 + y^2 <= 1", M_PI / 4.0},
      {"under parabola", "y <= x^2", 1.0 / 3.0},
      {"cubic region", "y <= x^3", 1.0 / 4.0},
      {"octant of ball", "x^2 + y^2 + z^2 <= 1", M_PI / 6.0},
  };
  // Through Session::run, no strategy is named: the planner sees a
  // nonlinear membership-testable formula and routes to Theorem-4 MC.
  Session session(&db);
  for (const Case& c : cases) {
    Request req;
    req.kind = RequestKind::kVolume;
    req.query = c.formula;
    req.output_vars = {"x", "y"};
    if (std::string(c.formula).find('z') != std::string::npos) {
      req.output_vars.push_back("z");
    }
    req.budget.epsilon = 0.02;
    req.seed = 99;
    auto a = session.run(req).value_or_die();
    std::printf("  %-16s exact=%-8.5f estimate=%-8.5f in [%.4f, %.4f]"
                "  (%s)\n",
                c.name, c.exact, *a.volume.estimate, *a.volume.lower,
                *a.volume.upper, strategy_name(a.plan->chosen));
  }

  std::printf("\n== convex baselines on the 3-cube [0,2]^3 (vol 8) ==\n");
  Polyhedron cube = Polyhedron::box(3, Rational(0), Rational(2));
  auto john = john_volume_bounds(cube).value_or_die();
  std::printf("  Lowner-John sandwich:  %.4f <= vol <= %.4f (k^k = 27)\n",
              john.lower, john.upper);
  auto har = hit_and_run_volume(cube, 6000, 4242).value_or_die();
  std::printf("  hit-and-run (DFK '91): %.4f  (%zu phases x %zu samples)\n",
              har.volume, har.phases, har.samples_per_phase);
  return 0;
}
