// The aggregation-operator landscape on one screen: why the paper had to
// invent FO+POLY+SUM.
//
//  - The Chomicki-Kuper mu operator keeps FO+LIN closed but assigns 0 to
//    every bounded set -- useless for volumes (paper, introduction).
//  - The trivial 1/2-approximation is the best *definable* approximation
//    (Proposition 4 / Theorem 2).
//  - FO+POLY+SUM computes bounded semi-linear volumes exactly (Theorem 3),
//    and its streamlined Sum syntax handles discrete aggregation.
//
// Build & run:  ./build/examples/measure_at_infinity

#include <cstdio>

#include "cqa/aggregate/sum_parser.h"
#include "cqa/approx/gadgets.h"
#include "cqa/logic/parser.h"
#include "cqa/runtime/session.h"
#include "cqa/volume/growth.h"
#include "cqa/volume/semilinear_volume.h"

int main() {
  using namespace cqa;

  std::printf("== the mu operator (Chomicki-Kuper '95) ==\n");
  struct Region {
    const char* name;
    const char* formula;
  } regions[] = {
      {"unit square", "0 <= x & x <= 1 & 0 <= y & y <= 1"},
      {"3x3 square", "0 <= x & x <= 3 & 0 <= y & y <= 3"},
      {"half plane", "x >= 0"},
      {"quadrant", "x >= 0 & y >= 0"},
      {"45-degree cone", "0 <= y & y <= x"},
      {"horizontal strip", "0 <= y & y <= 1"},
  };
  // All three columns flow through one Session: kMu, kVolume (exact;
  // an unbounded set is an error, reported as infinite), and
  // kGrowthPolynomial.
  ConstraintDatabase mu_db;
  Session session(&mu_db);
  std::printf("%-18s %-14s %-10s %-22s\n", "region", "mu", "VOL",
              "growth polynomial V(r)");
  for (const Region& r : regions) {
    Request req;
    req.query = r.formula;
    req.output_vars = {"x", "y"};
    req.kind = RequestKind::kMu;
    Rational mu = *session.run(req).value_or_die().mu;
    req.kind = RequestKind::kGrowthPolynomial;
    UPoly growth = *session.run(req).value_or_die().growth;
    req.kind = RequestKind::kVolume;
    auto vol = session.run(req);
    std::printf("%-18s %-14s %-10s %-22s\n", r.name, mu.to_string().c_str(),
                vol.is_ok() && vol.value().volume.exact
                    ? vol.value().volume.exact->to_string().c_str()
                    : "(infinite)",
                growth.to_string("r").c_str());
  }
  std::printf("-> mu separates cones by aperture but scores EVERY bounded "
              "set 0:\n   it cannot express volume (paper, Section 1).\n");

  std::printf("\n== the best definable approximation is trivial ==\n");
  VarTable vars;
  vars.index_of("x");
  vars.index_of("y");
  for (const char* formula :
       {"0 <= x & x <= 1/10 & 0 <= y & y <= 1",
        "0 <= x & x <= 9/10 & 0 <= y & y <= 1"}) {
    auto f = parse_formula(formula, &vars).value_or_die();
    auto cells = formula_to_cells(f, 2).value_or_die();
    Rational exact = semilinear_volume(cells).value_or_die();
    Rational triv = trivial_half_approximation(cells, 2).value_or_die();
    std::printf("  VOL_I = %-6s trivial approx = %-5s error = %s\n",
                exact.to_string().c_str(), triv.to_string().c_str(),
                (triv - exact).abs().to_string().c_str());
  }
  std::printf("-> error up to 1/2, and Theorem 2 says eps < 1/2 is "
              "undefinable.\n");

  std::printf("\n== FO+POLY+SUM does what neither can ==\n");
  Database db;
  // Exact volume of a union with overlap, through the Theorem-3 engine.
  auto f = parse_formula(
               "(0 <= x & x <= 2 & 0 <= y & y <= 2) | "
               "(1 <= x & x <= 3 & 1 <= y & y <= 3)",
               &vars)
               .value_or_die();
  auto cells = formula_to_cells(f, 2).value_or_die();
  std::printf("  exact VOL of overlapping union: %s\n",
              semilinear_volume(cells).value_or_die().to_string().c_str());
  // Discrete aggregation in the streamlined Sum syntax.
  VarTable sum_vars;
  auto term = parse_sum_term(
                  "sum[a, b in end(y : (0 <= y & y <= 1) | (2 <= y & y <= 3))"
                  " | a < b](v : v = b - a)",
                  &sum_vars)
                  .value_or_die();
  std::printf("  sum of pairwise endpoint gaps:  %s\n",
              term->eval(db, {}).value_or_die().to_string().c_str());
  return 0;
}
