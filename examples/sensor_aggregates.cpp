// Mixed finite/infinite aggregation: a sensor network with continuous
// coverage regions and discrete readings.
//
// Shows the FO+POLY+SUM discipline end to end: safe aggregation over
// finite outputs (SQL style), the END operator extracting the finitely
// many endpoints of a continuous query's 1-D output, and a Sum term over
// a range-restricted expression -- the paper's own first worked example.
//
// Build & run:  ./build/examples/sensor_aggregates

#include <cstdio>

#include "cqa/aggregate/endpoints.h"
#include "cqa/aggregate/sum_language.h"
#include "cqa/logic/transform.h"
#include "cqa/runtime/session.h"

int main() {
  using namespace cqa;
  ConstraintDatabase db;

  // Sensors cover intervals of a 10 km pipeline; readings are finite.
  CQA_CHECK(db.add_region("Cover", {"s", "p"},
                          // sensor 1 covers [0,4], sensor 2 covers [3,6],
                          // sensor 3 covers [8,10]
                          "(s = 1 & 0 <= p & p <= 4) | "
                          "(s = 2 & 3 <= p & p <= 6) | "
                          "(s = 3 & 8 <= p & p <= 10)")
                .is_ok());
  CQA_CHECK(db.add_table("Reading",
                         std::vector<std::vector<std::int64_t>>{
                             {1, 17}, {2, 23}, {3, 19}, {3, 21}})
                .is_ok());

  Session session(&db);
  auto aggregate = [&](AggregateFn fn, const char* query,
                       const char* out) {
    Request req;
    req.kind = RequestKind::kAggregate;
    req.aggregate_fn = fn;
    req.query = query;
    req.output_vars = {out};
    return *session.run(req).value_or_die().aggregate;
  };

  std::printf("== SQL aggregates over finite outputs ==\n");
  auto n = aggregate(AggregateFn::kCount, "E v. Reading(s, v)", "s");
  auto avg = aggregate(AggregateFn::kAvg, "E s. Reading(s, v)", "v");
  auto hot = aggregate(AggregateFn::kMax, "E s. Reading(s, v)", "v");
  std::printf("  sensors reporting:   %s\n", n.to_string().c_str());
  std::printf("  average reading:     %s\n", avg.to_string().c_str());
  std::printf("  maximum reading:     %s\n", hot.to_string().c_str());

  std::printf("\n== END: endpoints of a continuous query ==\n");
  // Positions covered by some sensor: an infinite (1-D) set...
  auto covered = db.parse("E s. Cover(s, p)").value_or_die();
  const std::size_t p = db.var("p");
  // ...whose interval endpoints are finite and exactly computable.
  auto eps = rational_endpoints_1d(db.db(), covered, p, {}).value_or_die();
  std::printf("  covered positions decompose with endpoints:");
  for (const auto& e : eps) std::printf(" %s", e.to_string().c_str());
  std::printf("\n");
  auto gaps = decompose_1d(db.db(), covered, p, {}).value_or_die();
  std::printf("  maximal covered intervals: %zu\n", gaps.size());

  std::printf("\n== the paper's Sum example: total of all endpoints ==\n");
  // rho(w) = true | END[p, covered(p)], gamma(x, w): x = w.
  const std::size_t w = db.var("w"), x = db.var("xout");
  RangeRestrictedExpr rho;
  rho.guard = Formula::make_true();
  rho.range = covered;
  rho.range_var = p;
  rho.w_vars = {w};
  // Re-express the range formula in terms of w.
  {
    std::map<std::size_t, Polynomial> sub;
    sub.emplace(p, Polynomial::variable(w));
    rho.range = substitute_vars(covered, sub);
    rho.range_var = w;
  }
  DeterministicFormula gamma{
      Formula::eq(Polynomial::variable(x), Polynomial::variable(w)), x};
  SumTermPtr total = SumTerm::sum(rho, gamma);
  std::printf("  Sum over END of covered:   %s\n",
              total->eval(db.db(), {}).value_or_die().to_string().c_str());

  // Count of endpoints, as a Sum of ones (Lemma 4's cardinality).
  DeterministicFormula one{
      Formula::eq(Polynomial::variable(x),
                  Polynomial::constant(Rational(1))),
      x};
  SumTermPtr count = SumTerm::sum(rho, one);
  std::printf("  COUNT via Sum of 1s:       %s\n",
              count->eval(db.db(), {}).value_or_die().to_string().c_str());
  return 0;
}
