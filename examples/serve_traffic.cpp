// The serving layer in one example: submit() returns a Ticket
// immediately, a Scheduler drains per-priority lanes on background
// executors, duplicate requests coalesce into one computation, and
// compatible Monte-Carlo requests fuse into shared sampling batches.
//
// Build & run:  ./build/examples/serve_traffic

#include <cstdio>
#include <vector>

#include "cqa/runtime/session.h"
#include "cqa/serve/scheduler.h"

int main() {
  using namespace cqa;
  ConstraintDatabase db;
  db.add_region("Parcel", {"x", "y"},
                "0 <= x & x <= 2 & 0 <= y & y <= 1");

  SessionOptions opts;
  opts.serve_executors = 2;
  Session session(&db, opts);

  // Ten clients ask the same exact-volume question at once. submit()
  // never blocks: each caller gets a Ticket and the scheduler notices
  // the queued duplicates, running the computation exactly once.
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 10; ++i) {
    tickets.push_back(
        session.submit(Request::volume("Parcel(x, y) & y <= 1/2")
                           .vars({"x", "y"})
                           .priority(Priority::kInteractive)));
  }
  for (auto& t : tickets) {
    auto a = t.wait().value_or_die();
    std::printf("parcel strip area = %s\n",
                a.volume.exact->to_string().c_str());
  }
  std::printf("10 tickets -> %llu computation(s), %llu coalesced\n\n",
              static_cast<unsigned long long>(
                  session.metrics().counter_value("volume_calls_total")),
              static_cast<unsigned long long>(
                  session.metrics().counter_value("serve_coalesced_total")));

  // Monte-Carlo traffic with distinct seeds can't coalesce -- the seeds
  // promise different sample streams -- but compatible requests fuse
  // into one batched pass over the pool. Each answer is still bitwise
  // identical to what a solo run() with that seed would produce.
  std::vector<serve::Ticket> mc;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    mc.push_back(session.submit(Request::volume("x^2 + y^2 <= 1")
                                    .vars({"x", "y"})
                                    .strategy(VolumeStrategy::kMonteCarlo)
                                    .epsilon(0.05)
                                    .vc_dim(3.0)
                                    .seed(seed)
                                    .priority(Priority::kBatch)));
  }
  for (std::size_t i = 0; i < mc.size(); ++i) {
    auto a = mc[i].wait().value_or_die();
    std::printf("seed %zu: quarter-disk MC area ~ %.4f\n", i + 1,
                *a.volume.estimate);
  }
  std::printf("MC requests batched: %llu\n\n",
              static_cast<unsigned long long>(
                  session.metrics().counter_value("serve_mc_batched_total")));

  // Tickets are cancellable up to (and during) execution; a ticket
  // cancelled before its turn resolves with kCancelled instead of
  // blocking forever.
  serve::Ticket doomed =
      session.submit(Request::volume("x^3 + y^3 <= 1 & x >= 0 & y >= 0")
                         .vars({"x", "y"})
                         .strategy(VolumeStrategy::kMonteCarlo)
                         .epsilon(0.01));
  doomed.cancel();
  auto gone = doomed.wait();
  std::printf("cancelled ticket -> %s\n",
              gone.is_ok() ? "finished first" : gone.status().to_string().c_str());

  std::printf("\n-- serve metrics --\n%s", session.metrics_dump().c_str());
  return 0;
}
