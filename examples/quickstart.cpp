// Quickstart: define a constraint database, run FO+LIN queries, compute
// exact volumes and a safe aggregate -- the whole paper in 60 lines.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "cqa/core/aggregation_engine.h"
#include "cqa/core/constraint_database.h"
#include "cqa/core/query_engine.h"
#include "cqa/core/volume_engine.h"

int main() {
  using namespace cqa;

  // A constraint database: spatial relations are *infinite* sets stored
  // as constraint formulas; ordinary tables are finite relations.
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("Disk", {"x", "y"},
                          // A diamond |x| + |y| <= 1 (semi-linear).
                          "x + y <= 1 & x - y <= 1 & "
                          "0 - x + y <= 1 & 0 - x - y <= 1")
                .is_ok());
  CQA_CHECK(db.add_region("Band", {"x", "y"},
                          "0 <= y & y <= 1/2")
                .is_ok());
  CQA_CHECK(db.add_table("Price",
                         std::vector<std::vector<std::int64_t>>{
                             {1, 100}, {2, 250}, {3, 40}})
                .is_ok());

  // 1. Boolean queries (FO+LIN decided by quantifier elimination).
  QueryEngine queries(&db);
  bool overlap =
      queries.ask("E x. E y. Disk(x, y) & Band(x, y)").value_or_die();
  std::printf("Disk meets Band?            %s\n", overlap ? "yes" : "no");

  // 2. The closure property: a query output is again a constraint set.
  auto cells = queries.cells("Disk(x, y) & Band(x, y)", {"x", "y"})
                   .value_or_die();
  std::printf("Intersection as cells:      %zu conjunctive cell(s)\n",
              cells.size());

  // 3. Exact volume (Theorem 3: FO+POLY+SUM computes VOL of semi-linear
  //    sets; here via the sweep engine it compiles to).
  VolumeEngine volumes(&db);
  auto area = volumes.volume("Disk(x, y) & Band(x, y)", {"x", "y"})
                  .value_or_die();
  std::printf("Exact area of the overlap:  %s\n",
              area.exact->to_string().c_str());

  auto whole = volumes.volume("Disk(x, y)", {"x", "y"}).value_or_die();
  std::printf("Exact area of the diamond:  %s\n",
              whole.exact->to_string().c_str());

  // 4. Classical SQL aggregation -- legal only on *safe* (finite) outputs.
  AggregationEngine agg(&db);
  auto avg = agg.aggregate(AggregateFn::kAvg,
                           "E k. Price(k, v) & k <= 2", "v")
                 .value_or_die();
  std::printf("AVG price of items 1..2:    %s\n", avg.to_string().c_str());

  // Aggregating an infinite output is refused, not silently wrong.
  auto unsafe = agg.aggregate(AggregateFn::kSum, "Disk(w, 0)", "w");
  std::printf("SUM over an infinite set:   %s\n",
              unsafe.status().to_string().c_str());
  return 0;
}
