// Quickstart: define a constraint database, open a Session, and push
// every query through the one entry point -- Session::run(Request) ->
// Result<Answer>. The whole paper in 70 lines.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "cqa/runtime/session.h"

int main() {
  using namespace cqa;

  // A constraint database: spatial relations are *infinite* sets stored
  // as constraint formulas; ordinary tables are finite relations.
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("Disk", {"x", "y"},
                          // A diamond |x| + |y| <= 1 (semi-linear).
                          "x + y <= 1 & x - y <= 1 & "
                          "0 - x + y <= 1 & 0 - x - y <= 1")
                .is_ok());
  CQA_CHECK(db.add_region("Band", {"x", "y"},
                          "0 <= y & y <= 1/2")
                .is_ok());
  CQA_CHECK(db.add_table("Price",
                         std::vector<std::vector<std::int64_t>>{
                             {1, 100}, {2, 250}, {3, 40}})
                .is_ok());

  // One Session = thread pool + memo-cache + metrics + adaptive planner.
  Session session(&db);

  // 1. Boolean queries (FO+LIN decided by quantifier elimination).
  Request ask;
  ask.kind = RequestKind::kAsk;
  ask.query = "E x. E y. Disk(x, y) & Band(x, y)";
  bool overlap = *session.run(ask).value_or_die().truth;
  std::printf("Disk meets Band?            %s\n", overlap ? "yes" : "no");

  // 2. The closure property: a query output is again a constraint set.
  Request cells;
  cells.kind = RequestKind::kCells;
  cells.query = "Disk(x, y) & Band(x, y)";
  cells.output_vars = {"x", "y"};
  auto c = session.run(cells).value_or_die();
  std::printf("Intersection as cells:      %zu conjunctive cell(s)\n",
              c.cells.size());

  // 3. Volume. The planner routes a linear query to the exact Theorem-3
  //    sweep; a polynomial query would flow to Theorem-4 sampling under
  //    the same Request -- set budget.epsilon/delta/deadline_ms to taste.
  Request vol;
  vol.kind = RequestKind::kVolume;
  vol.query = "Disk(x, y) & Band(x, y)";
  vol.output_vars = {"x", "y"};
  vol.budget.epsilon = 0.01;
  auto area = session.run(vol).value_or_die();
  std::printf("Exact area of the overlap:  %s   (planner chose: %s)\n",
              area.volume.exact->to_string().c_str(),
              strategy_name(area.plan->chosen));

  vol.query = "Disk(x, y)";
  auto whole = session.run(vol).value_or_die();
  std::printf("Exact area of the diamond:  %s\n",
              whole.volume.exact->to_string().c_str());

  // 4. Classical SQL aggregation -- legal only on *safe* (finite) outputs.
  Request agg;
  agg.kind = RequestKind::kAggregate;
  agg.aggregate_fn = AggregateFn::kAvg;
  agg.query = "E k. Price(k, v) & k <= 2";
  agg.output_vars = {"v"};
  auto avg = session.run(agg).value_or_die();
  std::printf("AVG price of items 1..2:    %s\n",
              avg.aggregate->to_string().c_str());

  // Aggregating an infinite output is refused, not silently wrong.
  agg.aggregate_fn = AggregateFn::kSum;
  agg.query = "Disk(w, 0)";
  agg.output_vars = {"w"};
  auto unsafe = session.run(agg);
  std::printf("SUM over an infinite set:   %s\n",
              unsafe.status().to_string().c_str());
  return 0;
}
