// GIS scenario: land parcels, flood zones, and exact spatial aggregation.
//
// This is the workload the paper's introduction motivates: spatial data as
// constraint relations, queried with relational calculus + linear
// constraints, aggregated with volumes (areas) and classical SQL
// operators. Includes the Section-5 convex-polygon area program executed
// *inside* FO+POLY+SUM.
//
// Build & run:  ./build/examples/gis_parcels

#include <cstdio>

#include "cqa/core/aggregation_engine.h"
#include "cqa/runtime/session.h"

int main() {
  using namespace cqa;
  ConstraintDatabase db;

  // Three parcels (convex semi-linear regions, coordinates in km).
  CQA_CHECK(db.add_region("ParcelA", {"x", "y"},
                          "0 <= x & x <= 2 & 0 <= y & y <= 1")
                .is_ok());
  CQA_CHECK(db.add_region("ParcelB", {"x", "y"},
                          "2 <= x & x <= 3 & 0 <= y & y <= 2 & y <= x - 1")
                .is_ok());
  CQA_CHECK(db.add_region("ParcelC", {"x", "y"},
                          "0 <= x & 1 <= y & x + y <= 3")
                .is_ok());
  // A flood zone crossing all of them.
  CQA_CHECK(db.add_region("Flood", {"x", "y"},
                          "y <= 3/4 & y >= 1/4")
                .is_ok());
  // Parcel ids and their owners (a finite table: id, owner id).
  CQA_CHECK(db.add_table("Owner", std::vector<std::vector<std::int64_t>>{
                                      {1, 501}, {2, 502}, {3, 501}})
                .is_ok());

  // Every query flows through the Session's one entry point; the
  // polygon-area program below is the only engine-level call left.
  Session session(&db);
  AggregationEngine agg(&db);
  auto volume_of = [&](const std::string& q) {
    Request req;
    req.kind = RequestKind::kVolume;
    req.query = q;
    req.output_vars = {"x", "y"};
    return session.run(req).value_or_die().volume;
  };

  std::printf("== exact areas (Theorem 3 engine) ==\n");
  const char* parcels[] = {"ParcelA", "ParcelB", "ParcelC"};
  for (const char* p : parcels) {
    std::string q = std::string(p) + "(x, y)";
    auto area = volume_of(q);
    auto flooded = volume_of(q + " & Flood(x, y)");
    std::printf("  %-8s area = %-5s  flooded = %s\n", p,
                area.exact->to_string().c_str(),
                flooded.exact->to_string().c_str());
  }

  // Union area with overlaps handled exactly (ParcelA and ParcelC
  // overlap; inclusion-exclusion and the sweep agree).
  auto total =
      volume_of("ParcelA(x, y) | ParcelB(x, y) | ParcelC(x, y)");
  std::printf("  total developed area (union, exact) = %s\n",
              total.exact->to_string().c_str());

  std::printf("\n== spatial joins ==\n");
  Request ask;
  ask.kind = RequestKind::kAsk;
  ask.query = "E x. E y. ParcelA(x, y) & ParcelB(x, y)";
  bool touching = *session.run(ask).value_or_die().truth;
  std::printf("  ParcelA touches ParcelB?   %s\n", touching ? "yes" : "no");
  Request dry;
  dry.kind = RequestKind::kCells;
  dry.query = "ParcelA(x, y) & !Flood(x, y)";
  dry.output_vars = {"x", "y"};
  auto safe_strip = session.run(dry).value_or_die().cells;
  std::printf("  dry part of ParcelA:       %zu cells\n", safe_strip.size());
  auto dry_area = volume_of("ParcelA(x, y) & !Flood(x, y)");
  std::printf("  dry area of ParcelA:       %s\n",
              dry_area.exact->to_string().c_str());

  std::printf("\n== the Section-5 program: polygon area inside the "
              "language ==\n");
  auto in_lang = agg.polygon_area_in_language("ParcelC").value_or_die();
  auto oracle = agg.polygon_area_geometric("ParcelC").value_or_die();
  std::printf("  FO+POLY+SUM program:       %s\n",
              in_lang.to_string().c_str());
  std::printf("  geometric oracle:          %s\n", oracle.to_string().c_str());

  std::printf("\n== classical aggregation over the owner table ==\n");
  Request count;
  count.kind = RequestKind::kAggregate;
  count.aggregate_fn = AggregateFn::kCount;
  count.query = "E o. Owner(p, o)";
  count.output_vars = {"p"};
  auto n_parcels = *session.run(count).value_or_die().aggregate;
  count.query = "Owner(p, 501)";
  auto owner501 = *session.run(count).value_or_die().aggregate;
  std::printf("  parcels on file:           %s\n",
              n_parcels.to_string().c_str());
  std::printf("  parcels owned by #501:     %s\n",
              owner501.to_string().c_str());
  return 0;
}
