// GIS scenario: land parcels, flood zones, and exact spatial aggregation.
//
// This is the workload the paper's introduction motivates: spatial data as
// constraint relations, queried with relational calculus + linear
// constraints, aggregated with volumes (areas) and classical SQL
// operators. Includes the Section-5 convex-polygon area program executed
// *inside* FO+POLY+SUM.
//
// Build & run:  ./build/examples/gis_parcels

#include <cstdio>

#include "cqa/core/aggregation_engine.h"
#include "cqa/core/constraint_database.h"
#include "cqa/core/query_engine.h"
#include "cqa/core/volume_engine.h"

int main() {
  using namespace cqa;
  ConstraintDatabase db;

  // Three parcels (convex semi-linear regions, coordinates in km).
  CQA_CHECK(db.add_region("ParcelA", {"x", "y"},
                          "0 <= x & x <= 2 & 0 <= y & y <= 1")
                .is_ok());
  CQA_CHECK(db.add_region("ParcelB", {"x", "y"},
                          "2 <= x & x <= 3 & 0 <= y & y <= 2 & y <= x - 1")
                .is_ok());
  CQA_CHECK(db.add_region("ParcelC", {"x", "y"},
                          "0 <= x & 1 <= y & x + y <= 3")
                .is_ok());
  // A flood zone crossing all of them.
  CQA_CHECK(db.add_region("Flood", {"x", "y"},
                          "y <= 3/4 & y >= 1/4")
                .is_ok());
  // Parcel ids and their owners (a finite table: id, owner id).
  CQA_CHECK(db.add_table("Owner", std::vector<std::vector<std::int64_t>>{
                                      {1, 501}, {2, 502}, {3, 501}})
                .is_ok());

  QueryEngine queries(&db);
  VolumeEngine volumes(&db);
  AggregationEngine agg(&db);

  std::printf("== exact areas (Theorem 3 engine) ==\n");
  const char* parcels[] = {"ParcelA", "ParcelB", "ParcelC"};
  for (const char* p : parcels) {
    std::string q = std::string(p) + "(x, y)";
    auto area = volumes.volume(q, {"x", "y"}).value_or_die();
    auto flooded =
        volumes.volume(q + " & Flood(x, y)", {"x", "y"}).value_or_die();
    std::printf("  %-8s area = %-5s  flooded = %s\n", p,
                area.exact->to_string().c_str(),
                flooded.exact->to_string().c_str());
  }

  // Union area with overlaps handled exactly (ParcelA and ParcelC
  // overlap; inclusion-exclusion and the sweep agree).
  auto total = volumes
                   .volume("ParcelA(x, y) | ParcelB(x, y) | ParcelC(x, y)",
                           {"x", "y"})
                   .value_or_die();
  std::printf("  total developed area (union, exact) = %s\n",
              total.exact->to_string().c_str());

  std::printf("\n== spatial joins ==\n");
  bool touching =
      queries.ask("E x. E y. ParcelA(x, y) & ParcelB(x, y)").value_or_die();
  std::printf("  ParcelA touches ParcelB?   %s\n", touching ? "yes" : "no");
  auto safe_strip =
      queries.cells("ParcelA(x, y) & !Flood(x, y)", {"x", "y"})
          .value_or_die();
  std::printf("  dry part of ParcelA:       %zu cells\n", safe_strip.size());
  auto dry_area = volumes.volume("ParcelA(x, y) & !Flood(x, y)", {"x", "y"})
                      .value_or_die();
  std::printf("  dry area of ParcelA:       %s\n",
              dry_area.exact->to_string().c_str());

  std::printf("\n== the Section-5 program: polygon area inside the "
              "language ==\n");
  auto in_lang = agg.polygon_area_in_language("ParcelC").value_or_die();
  auto oracle = agg.polygon_area_geometric("ParcelC").value_or_die();
  std::printf("  FO+POLY+SUM program:       %s\n",
              in_lang.to_string().c_str());
  std::printf("  geometric oracle:          %s\n", oracle.to_string().c_str());

  std::printf("\n== classical aggregation over the owner table ==\n");
  auto n_parcels =
      agg.aggregate(AggregateFn::kCount, "E o. Owner(p, o)", "p")
          .value_or_die();
  auto owner501 = agg.aggregate(AggregateFn::kCount, "Owner(p, 501)", "p")
                      .value_or_die();
  std::printf("  parcels on file:           %s\n",
              n_parcels.to_string().c_str());
  std::printf("  parcels owned by #501:     %s\n",
              owner501.to_string().c_str());
  return 0;
}
