// A7 -- sharded serving throughput: a 4-worker cqa_served fleet on a
// unix socket must sustain >= 10k req/s of mixed duplicate-heavy
// traffic end-to-end (encode, route, answer, decode), with honest tail
// latency and a measured shed-rate under surge.
//
// Two phases:
//
//   hot   -- C client threads replay a mixed set of K distinct requests
//            (exact volumes, decisions, pinned-seed Monte-Carlo). After
//            one warm pass everything is a fingerprint hit in the
//            persistent result cache, so the phase measures the wire +
//            router round trip: req/s, p50, p99.
//   surge -- a second fleet with shard_capacity=1 is flooded with
//            distinct slow Monte-Carlo requests. Admission sheds the
//            overflow to certified trivial-1/2 (guard.shed = true);
//            the phase records the shed-rate and checks every shed
//            answer stayed honest ([0,1] bars, degraded status).
//   survival -- ~500 exact quarter-volume requests through a seeded
//            wire-chaos proxy (torn frames, disconnects, bit flips,
//            stalls, blackholes) against a watchdog-armed fleet, with
//            one worker SIGSTOPped mid-drill. Records client retry and
//            reconnect totals, watchdog kills, respawns -- and demands
//            zero dishonest answers.
//
// Writes BENCH_served.json with a throughput_ok verdict.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>

#include "bench_util.h"
#include "cqa/served/chaos.h"
#include "cqa/served/client.h"
#include "cqa/served/server.h"

namespace {

using namespace cqa;

constexpr std::size_t kWorkers = 4;
constexpr std::size_t kClientThreads = 8;
constexpr std::size_t kDistinct = 16;
constexpr std::size_t kRequestsPerThread = 2500;  // 20k total
constexpr double kReqPerSecFloor = 10000.0;

constexpr std::size_t kSurgeThreads = 8;
constexpr std::size_t kSurgePerThread = 40;

constexpr std::size_t kSurvivalThreads = 8;
constexpr std::size_t kSurvivalPerThread = 64;  // 512 through the gauntlet

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string tmp_name(const char* stem) {
  return std::string("/tmp/cqa_bench_a7.") + std::to_string(getpid()) + "." +
         stem;
}

// The mixed hot set: i cycles through cheap exact volumes (distinct
// boxes), closed decisions, and pinned-seed Monte-Carlo discs. All are
// deterministic in their fingerprint, hence cacheable.
Request hot_request(std::size_t i) {
  switch (i % 3) {
    case 0: {
      const std::string w = std::to_string(1 + (i % 4));
      return Request::volume("0 <= x & 4*x <= " + w + " & 0 <= y & y <= 1")
          .vars({"x", "y"})
          .build();
    }
    case 1:
      return Request::ask("E x. x * x = " + std::to_string(2 + i)).build();
    default:
      return Request::volume("x^2 + y^2 <= 9/10")
          .vars({"x", "y"})
          .strategy(VolumeStrategy::kMonteCarlo)
          .epsilon(0.05)
          .vc_dim(3.0)
          .seed(100 + i)
          .build();
  }
}

struct HotResult {
  double elapsed_sec = 0;
  double req_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  std::uint64_t cache_hits = 0;
};

HotResult run_hot_phase(const std::string& sock) {
  std::vector<Request> distinct;
  for (std::size_t i = 0; i < kDistinct; ++i) {
    distinct.push_back(hot_request(i));
  }
  {
    // Warm pass: every signature computed once, stored in the cache.
    auto connected = served::Client::connect_unix(sock);
    CQA_CHECK(connected.is_ok());
    served::Client client = std::move(connected).take();
    for (const Request& r : distinct) {
      CQA_CHECK(client.call(r).is_ok());
    }
  }
  std::vector<std::vector<double>> latencies(kClientThreads);
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  const double t0 = now_seconds();
  for (std::size_t t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      auto connected = served::Client::connect_unix(sock);
      CQA_CHECK(connected.is_ok());
      served::Client client = std::move(connected).take();
      auto& lats = latencies[t];
      lats.reserve(kRequestsPerThread);
      for (std::size_t i = 0; i < kRequestsPerThread; ++i) {
        const Request& r = distinct[(t + i) % kDistinct];
        const double s0 = now_seconds();
        if (!client.call(r).is_ok()) failures.fetch_add(1);
        lats.push_back((now_seconds() - s0) * 1000.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  HotResult hr;
  hr.elapsed_sec = now_seconds() - t0;
  std::vector<double> all;
  for (auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());
  hr.requests = all.size();
  hr.failures = failures.load();
  hr.req_per_sec = hr.elapsed_sec > 0 ? hr.requests / hr.elapsed_sec : 0;
  hr.p50_ms = all.empty() ? 0 : all[all.size() / 2];
  hr.p99_ms = all.empty() ? 0 : all[(all.size() * 99) / 100];
  return hr;
}

struct SurgeResult {
  std::uint64_t requests = 0;
  std::uint64_t shed = 0;
  std::uint64_t dishonest = 0;  // shed answers without [0,1] bars
  double shed_rate = 0;
};

SurgeResult run_surge_phase() {
  served::ServedOptions options;
  options.workers = kWorkers;
  options.unix_path = tmp_name("surge.sock");
  options.shard_capacity = 1;  // admission sheds almost everything
  served::Server server(options);
  CQA_CHECK(server.start().is_ok());

  std::atomic<std::uint64_t> shed_seen{0};
  std::atomic<std::uint64_t> dishonest{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kSurgeThreads; ++t) {
    threads.emplace_back([&, t] {
      auto connected = served::Client::connect_unix(options.unix_path);
      CQA_CHECK(connected.is_ok());
      served::Client client = std::move(connected).take();
      for (std::size_t i = 0; i < kSurgePerThread; ++i) {
        // Distinct seeds: no coalescing, no cache, real MC work.
        Request r = Request::volume("x^2 + y^2 + x*y <= 4/5")
                        .vars({"x", "y"})
                        .strategy(VolumeStrategy::kMonteCarlo)
                        .epsilon(0.02)
                        .vc_dim(3.0)
                        .seed(1 + t * kSurgePerThread + i);
        auto a = client.call(r);
        if (!a.is_ok()) continue;
        if (a.value().guard.shed) {
          shed_seen.fetch_add(1);
          const bool honest = a.value().degraded() &&
                              a.value().volume.lower.value_or(1.0) <= 0.0 &&
                              a.value().volume.upper.value_or(0.0) >= 1.0;
          if (!honest) dishonest.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const served::ServerStats s = server.stats();
  server.stop();
  unlink(options.unix_path.c_str());
  SurgeResult sr;
  sr.requests = s.requests;
  sr.shed = s.shed;
  sr.dishonest = dishonest.load();
  sr.shed_rate = s.requests > 0 ? static_cast<double>(s.shed) / s.requests
                                : 0.0;
  return sr;
}

struct SurvivalResult {
  std::uint64_t requests = 0;
  std::uint64_t ok_exact = 0;
  std::uint64_t ok_degraded = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t dishonest = 0;
  std::uint64_t client_retries = 0;
  std::uint64_t client_reconnects = 0;
  std::uint64_t respawns = 0;
  std::uint64_t hung_kills = 0;
  std::uint64_t faults_injected = 0;
};

SurvivalResult run_survival_phase() {
  served::ServedOptions options;
  options.workers = kWorkers;
  options.unix_path = tmp_name("chaos.sock");
  options.watchdog_budget_ms = 1500;
  options.watchdog_interval_ms = 50;
  options.term_grace_ms = 100;
  served::Server server(options);
  CQA_CHECK(server.start().is_ok());

  served::ChaosOptions copt;
  copt.plan.seed = 7;
  auto rate = [&](guard::FaultSite s) -> double& {
    return copt.plan.rate[static_cast<std::size_t>(s)];
  };
  // ~20% of forwarded chunks / accepted connections take a fault.
  rate(guard::FaultSite::kWireTornFrame) = 0.05;
  rate(guard::FaultSite::kWireDisconnect) = 0.05;
  rate(guard::FaultSite::kWireBitFlip) = 0.05;
  rate(guard::FaultSite::kWireStalledWrite) = 0.03;
  rate(guard::FaultSite::kWireBlackhole) = 0.02;
  copt.stall_ms = 50;
  copt.upstream_unix = options.unix_path;
  served::ChaosProxy proxy(copt);
  CQA_CHECK(proxy.start().is_ok());

  const double kQuarter = 0.25;
  std::atomic<std::uint64_t> ok_exact{0};
  std::atomic<std::uint64_t> ok_degraded{0};
  std::atomic<std::uint64_t> typed_errors{0};
  std::atomic<std::uint64_t> dishonest{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kSurvivalThreads; ++t) {
    threads.emplace_back([&, t] {
      served::ClientOptions cl;
      cl.connect_timeout_ms = 1000;
      cl.backoff_base_ms = 2;
      cl.backoff_cap_ms = 20;
      cl.seed = 7000 + t;
      auto connect = [&]() {
        return served::Client::connect_tcp("127.0.0.1", proxy.port(), cl);
      };
      auto client = connect();
      for (std::size_t i = 0; i < kSurvivalPerThread; ++i) {
        if (!client.is_ok()) {
          client = connect();
          if (!client.is_ok()) {
            typed_errors.fetch_add(1);
            continue;
          }
        }
        Request r =
            Request::volume("0 <= x & x <= 1/2 & 0 <= y & y <= 1/2")
                .vars({"x", "y"})
                .seed(1 + t * kSurvivalPerThread + i)
                .build();
        auto a = client.value().call(r, /*timeout_ms=*/2000);
        if (!a.is_ok()) {
          typed_errors.fetch_add(1);
          if (a.status().code() == StatusCode::kDeadlineExceeded) {
            // Blackholed or stalled past the budget: re-dial rather
            // than burn every remaining call on a dead pipe.
            retries.fetch_add(client.value().retry_stats().retries);
            reconnects.fetch_add(client.value().retry_stats().reconnects);
            client = connect();
          }
          continue;
        }
        const Answer& ans = a.value();
        if (ans.degraded()) {
          const bool flagged = ans.guard.shed || ans.guard.worker_crashed ||
                               ans.guard.worker_hung;
          const bool honest_bars =
              ans.volume.lower.value_or(1.0) <= 0.0 &&
              ans.volume.upper.value_or(0.0) >= 1.0;
          if (flagged && honest_bars) {
            ok_degraded.fetch_add(1);
          } else {
            dishonest.fetch_add(1);
          }
        } else if (ans.volume.value() == kQuarter) {
          ok_exact.fetch_add(1);
        } else {
          dishonest.fetch_add(1);  // wire corruption slipped through
        }
      }
      if (client.is_ok()) {
        retries.fetch_add(client.value().retry_stats().retries);
        reconnects.fetch_add(client.value().retry_stats().reconnects);
      }
    });
  }
  // Freeze one shard mid-drill: the watchdog must notice, kill, respawn.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  kill(server.worker_pid(0), SIGSTOP);
  for (auto& th : threads) th.join();

  const served::ServerStats ss = server.stats();
  const served::ChaosStats cs = proxy.stats();
  proxy.stop();
  server.stop();
  unlink(options.unix_path.c_str());

  SurvivalResult sv;
  sv.requests = kSurvivalThreads * kSurvivalPerThread;
  sv.ok_exact = ok_exact.load();
  sv.ok_degraded = ok_degraded.load();
  sv.typed_errors = typed_errors.load();
  sv.dishonest = dishonest.load();
  sv.client_retries = retries.load();
  sv.client_reconnects = reconnects.load();
  sv.respawns = ss.respawns;
  sv.hung_kills = ss.hung_kills;
  sv.faults_injected =
      cs.torn + cs.stalled + cs.disconnects + cs.bit_flips + cs.blackholes;
  return sv;
}

void print_table() {
  cqa_bench::header(
      "A7: sharded serving (4-process fleet, binary wire protocol)",
      "a fingerprint-routed fleet sustains >= 10k req/s of mixed "
      "duplicate-heavy traffic and sheds surges honestly");

  served::ServedOptions options;
  options.workers = kWorkers;
  options.unix_path = tmp_name("hot.sock");
  options.cache_path = tmp_name("hot.cache");
  served::Server server(options);
  CQA_CHECK(server.start().is_ok());
  HotResult hot = run_hot_phase(options.unix_path);
  hot.cache_hits = server.stats().cache_hits;
  server.stop();
  unlink(options.unix_path.c_str());
  unlink(options.cache_path.c_str());
  for (std::size_t i = 0; i < kWorkers; ++i) {
    unlink((options.cache_path + ".volumes.shard" + std::to_string(i))
               .c_str());
  }
  CQA_CHECK(hot.failures == 0);

  SurgeResult surge = run_surge_phase();
  CQA_CHECK(surge.dishonest == 0);

  SurvivalResult sv = run_survival_phase();
  CQA_CHECK(sv.dishonest == 0);
  CQA_CHECK(sv.ok_exact > 0);

  const bool ok = hot.req_per_sec >= kReqPerSecFloor;
  std::printf("workers             %zu processes\n", kWorkers);
  std::printf("clients             %zu threads x %zu requests\n",
              kClientThreads, kRequestsPerThread);
  std::printf("hot requests        %llu (%llu cache hits)\n",
              static_cast<unsigned long long>(hot.requests),
              static_cast<unsigned long long>(hot.cache_hits));
  std::printf("hot throughput      %.0f req/s (floor %.0f) -> %s\n",
              hot.req_per_sec, kReqPerSecFloor,
              ok ? "ok" : "UNDER FLOOR");
  std::printf("hot latency         p50 %.3fms  p99 %.3fms\n", hot.p50_ms,
              hot.p99_ms);
  std::printf("surge shed          %llu / %llu (rate %.2f, dishonest %llu)\n",
              static_cast<unsigned long long>(surge.shed),
              static_cast<unsigned long long>(surge.requests),
              surge.shed_rate,
              static_cast<unsigned long long>(surge.dishonest));
  std::printf(
      "survival            %llu req: %llu exact, %llu degraded, %llu "
      "typed errors, %llu dishonest\n",
      static_cast<unsigned long long>(sv.requests),
      static_cast<unsigned long long>(sv.ok_exact),
      static_cast<unsigned long long>(sv.ok_degraded),
      static_cast<unsigned long long>(sv.typed_errors),
      static_cast<unsigned long long>(sv.dishonest));
  std::printf(
      "survival recovery   %llu faults, %llu retries, %llu reconnects, "
      "%llu hung kills, %llu respawns\n",
      static_cast<unsigned long long>(sv.faults_injected),
      static_cast<unsigned long long>(sv.client_retries),
      static_cast<unsigned long long>(sv.client_reconnects),
      static_cast<unsigned long long>(sv.hung_kills),
      static_cast<unsigned long long>(sv.respawns));

  std::string json =
      "{\n  \"workers\": " + std::to_string(kWorkers) +
      ",\n  \"client_threads\": " + std::to_string(kClientThreads) +
      ",\n  \"requests\": " + std::to_string(hot.requests) +
      ",\n  \"elapsed_sec\": " + std::to_string(hot.elapsed_sec) +
      ",\n  \"req_per_sec\": " + std::to_string(hot.req_per_sec) +
      ",\n  \"p50_ms\": " + std::to_string(hot.p50_ms) +
      ",\n  \"p99_ms\": " + std::to_string(hot.p99_ms) +
      ",\n  \"cache_hits\": " + std::to_string(hot.cache_hits) +
      ",\n  \"surge_requests\": " + std::to_string(surge.requests) +
      ",\n  \"surge_shed\": " + std::to_string(surge.shed) +
      ",\n  \"shed_rate\": " + std::to_string(surge.shed_rate) +
      ",\n  \"survival_requests\": " + std::to_string(sv.requests) +
      ",\n  \"survival_ok_exact\": " + std::to_string(sv.ok_exact) +
      ",\n  \"survival_degraded\": " + std::to_string(sv.ok_degraded) +
      ",\n  \"survival_typed_errors\": " + std::to_string(sv.typed_errors) +
      ",\n  \"survival_dishonest\": " + std::to_string(sv.dishonest) +
      ",\n  \"survival_faults\": " + std::to_string(sv.faults_injected) +
      ",\n  \"client_retries\": " + std::to_string(sv.client_retries) +
      ",\n  \"client_reconnects\": " + std::to_string(sv.client_reconnects) +
      ",\n  \"hung_kills\": " + std::to_string(sv.hung_kills) +
      ",\n  \"respawns\": " + std::to_string(sv.respawns) +
      ",\n  \"req_per_sec_floor\": " + std::to_string(kReqPerSecFloor) +
      ",\n  \"throughput_ok\": " + (ok ? std::string("true")
                                       : std::string("false")) +
      "\n}\n";
  std::FILE* f = std::fopen("BENCH_served.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_served.json\n");
  }
}

// Micro cost of one wire round trip against a single-worker fleet with
// a warm cache: the fixed overhead a remote caller pays over a local
// Session::run on the same cached request.
void BM_WireRoundTripCached(benchmark::State& state) {
  served::ServedOptions options;
  options.workers = 1;
  options.unix_path = tmp_name("micro.sock");
  options.cache_path = tmp_name("micro.cache");
  served::Server server(options);
  CQA_CHECK(server.start().is_ok());
  auto connected = served::Client::connect_unix(options.unix_path);
  CQA_CHECK(connected.is_ok());
  served::Client client = std::move(connected).take();
  Request req = Request::volume("0 <= x & x <= 1 & 0 <= y & y <= 1")
                    .vars({"x", "y"});
  client.call(req).value_or_die();  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call(req).is_ok());
  }
  server.stop();
  unlink(options.unix_path.c_str());
  unlink(options.cache_path.c_str());
  unlink((options.cache_path + ".volumes.shard0").c_str());
}
BENCHMARK(BM_WireRoundTripCached);

}  // namespace

CQA_BENCH_MAIN(print_table)
