// E6 -- the Section-5 worked example: the area of a convex polygon
// computed INSIDE FO+POLY+SUM (vertex formula, adjacency formula, psi1
// fan selection, psi2/END endpoints, triangle-area gamma, Sum), validated
// against the shoelace oracle and the generic Theorem-3 sweep.

#include "bench_util.h"
#include "cqa/core/aggregation_engine.h"
#include "cqa/core/constraint_database.h"
#include "cqa/core/volume_engine.h"

namespace {

using namespace cqa;

struct Poly {
  const char* name;
  const char* formula;
};

const Poly kPolys[] = {
    {"triangle", "0 <= x & 0 <= y & x + y <= 2"},
    {"square", "0 <= x & x <= 3/2 & 0 <= y & y <= 3/2"},
    {"quad", "0 <= x & 0 <= y & x + 2*y <= 4 & 2*x + y <= 4"},
    {"pentagon", "0 <= x & x <= 2 & 0 <= y & y <= 2 & x + y <= 3"},
    {"hexagon",
     "0 <= x & x <= 2 & 0 <= y & y <= 2 & x + y <= 7/2 & x + y >= 1/2"},
};

void print_table() {
  cqa_bench::header("E6: convex polygon area inside FO+POLY+SUM",
                    "in-language program == shoelace oracle == sweep "
                    "engine, exactly");
  std::printf("%-10s %-14s %-14s %-14s %-7s\n", "polygon", "in_language",
              "shoelace", "sweep", "agree");
  for (const Poly& p : kPolys) {
    ConstraintDatabase db;
    CQA_CHECK(db.add_region("P", {"x", "y"}, p.formula).is_ok());
    AggregationEngine agg(&db);
    VolumeEngine vol(&db);
    Rational in_lang = agg.polygon_area_in_language("P").value_or_die();
    Rational oracle = agg.polygon_area_geometric("P").value_or_die();
    Rational sweep =
        *vol.volume("P(x, y)", {"x", "y"}).value_or_die().exact;
    std::printf("%-10s %-14s %-14s %-14s %-7s\n", p.name,
                in_lang.to_string().c_str(), oracle.to_string().c_str(),
                sweep.to_string().c_str(),
                (in_lang == oracle && oracle == sweep) ? "yes" : "NO");
  }
}

void BM_InLanguageArea(benchmark::State& state) {
  const Poly& p = kPolys[static_cast<std::size_t>(state.range(0))];
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("P", {"x", "y"}, p.formula).is_ok());
  AggregationEngine agg(&db);
  for (auto _ : state) {
    auto a = agg.polygon_area_in_language("P");
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_InLanguageArea)->Arg(0)->Arg(1)->Arg(3)->Unit(
    benchmark::kMillisecond);

void BM_GeometricOracle(benchmark::State& state) {
  const Poly& p = kPolys[static_cast<std::size_t>(state.range(0))];
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("P", {"x", "y"}, p.formula).is_ok());
  AggregationEngine agg(&db);
  for (auto _ : state) {
    auto a = agg.polygon_area_geometric("P");
    benchmark::DoNotOptimize(a);
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_GeometricOracle)->Arg(0)->Arg(3);

}  // namespace

CQA_BENCH_MAIN(print_table)
