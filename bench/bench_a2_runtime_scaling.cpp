// A2 -- cqa::runtime scaling: Monte-Carlo volume throughput at 1/2/4/8
// pool threads on the E3 disk workload, and the rewrite/volume memo-cache
// speedup on repeated identical calls.
//
// The headline table times each configuration once, checks the bitwise
// serial/parallel invariant, and writes BENCH_runtime.json next to the
// working directory; the google-benchmark section re-measures the same
// paths with its usual statistics.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cqa/approx/compiled_membership.h"
#include "cqa/approx/monte_carlo.h"
#include "cqa/approx/random.h"
#include "cqa/core/constraint_database.h"
#include "cqa/core/query_engine.h"
#include "cqa/runtime/parallel_sampler.h"
#include "cqa/runtime/session.h"
#include "cqa/vc/sample_bounds.h"

namespace {

using namespace cqa;

constexpr std::size_t kSampleSize = 200000;
constexpr std::size_t kChunkSize = 2048;
constexpr const char* kMcFormula = "x^2 + y^2 <= a";
// A QE-heavy FO+LIN query: two quantifier eliminations over a region.
constexpr const char* kQeQuery = "E u. E v. Zone(x, u) & Zone(v, y)";

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void add_zone(ConstraintDatabase* db) {
  Status st = db->add_region(
      "Zone", {"s", "t"},
      "0 <= s & s <= 1 & 0 <= t & t <= 1 & s + t <= 3/2");
  CQA_CHECK(st.is_ok());
}

void print_table() {
  cqa_bench::header(
      "A2: runtime scaling -- work-stealing MC sampling + memo-cache",
      "parallel estimate must be bitwise identical to serial; throughput "
      "should scale with pool threads (hardware permitting); repeated "
      "rewrites should be cache hits");

  ConstraintDatabase db;
  auto phi = db.parse(kMcFormula).value_or_die();
  const std::size_t x = db.var("x"), y = db.var("y"), a = db.var("a");
  ParallelSampler sampler(&db.db(), phi, {x, y}, kSampleSize, 31337,
                          kChunkSize);
  const std::map<std::size_t, Rational> params = {{a, Rational(9, 10)}};

  // Kernel ablation: the eval_qf_double tree walk vs the compiled batch
  // kernel on ONE materialized sample -- the serially-measurable half of
  // the speedup story (thread scaling is the other half, below). Uses a
  // multi-atom FO+LIN membership formula so the lane-mask fast path is
  // what gets measured; FO+POLY atoms fall back to the interpreter per
  // lane and would measure interpreter-vs-interpreter.
  auto kernel_phi =
      db.parse("x + y <= 1 & x - y <= 1/2 & 2*x + 3*y >= a & x <= 3/4")
          .value_or_die();
  auto inlined = db.db().inline_predicates(kernel_phi).value_or_die();
  WitnessOperator witness(31337);
  const auto kernel_pts = witness.draw_sample(kSampleSize, 2);
  const std::map<std::size_t, Rational> kernel_params = {
      {a, Rational(-1, 4)}};
  double t0 = now_seconds();
  const std::size_t interp_hits =
      mc_count_hits(inlined, {x, y}, kernel_params, kernel_pts.data(),
                    kernel_pts.size())
          .value_or_die();
  const double interp_sec = now_seconds() - t0;
  auto compiled_r = CompiledMembership::compile(inlined, {x, y});
  CQA_CHECK(compiled_r.is_ok());
  const auto compiled = std::move(compiled_r).take();
  auto binding = compiled.bind(kernel_params).value_or_die();
  t0 = now_seconds();
  const std::size_t kernel_hits =
      compiled.count_hits(binding, kernel_pts.data(), kernel_pts.size())
          .value_or_die();
  const double kernel_sec = now_seconds() - t0;
  CQA_CHECK(interp_hits == kernel_hits);  // the differential contract
  std::printf("membership kernel, M=%zu points:\n", kSampleSize);
  std::printf("  interpreter  %.4fs  (%.0f points/sec)\n", interp_sec,
              kSampleSize / interp_sec);
  std::printf("  compiled     %.4fs  (%.0f points/sec, %.1fx)\n\n",
              kernel_sec, kSampleSize / kernel_sec,
              interp_sec / kernel_sec);

  std::printf("MC throughput, M=%zu points (disk family, a=0.9):\n",
              kSampleSize);
  std::printf("%-9s %-12s %-14s %-10s %-9s\n", "threads", "seconds",
              "points/sec", "estimate", "bitwise");
  t0 = now_seconds();
  const double serial = sampler.estimate(params, nullptr).value_or_die();
  const double serial_sec = now_seconds() - t0;
  std::printf("%-9s %-12.4f %-14.0f %-10.6f %-9s\n", "serial", serial_sec,
              kSampleSize / serial_sec, serial, "-");

  const unsigned hw = std::thread::hardware_concurrency();
  std::string json =
      "{\n  \"sample_size\": " + std::to_string(kSampleSize) +
      ",\n  \"hardware_concurrency\": " + std::to_string(hw) +
      ",\n  \"kernel\": {\"interpreter_seconds\": " +
      std::to_string(interp_sec) +
      ", \"compiled_seconds\": " + std::to_string(kernel_sec) +
      ", \"kernel_speedup\": " + std::to_string(interp_sec / kernel_sec) +
      "},\n  \"serial_seconds\": " + std::to_string(serial_sec) +
      ",\n  \"serial_samples_per_sec\": " +
      std::to_string(kSampleSize / serial_sec) + ",\n  \"threads\": [\n";
  bool first = true;
  double best_speedup = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    t0 = now_seconds();
    const double est = sampler.estimate(params, &pool).value_or_die();
    const double sec = now_seconds() - t0;
    const bool bitwise = est == serial;
    best_speedup = std::max(best_speedup, serial_sec / sec);
    std::printf("%-9zu %-12.4f %-14.0f %-10.6f %-9s\n", threads, sec,
                kSampleSize / sec, est, bitwise ? "yes" : "NO");
    json += std::string(first ? "" : ",\n") + "    {\"threads\": " +
            std::to_string(threads) + ", \"seconds\": " +
            std::to_string(sec) + ", \"samples_per_sec\": " +
            std::to_string(kSampleSize / sec) + ", \"speedup\": " +
            std::to_string(serial_sec / sec) + ", \"bitwise_identical\": " +
            (bitwise ? "true" : "false") + "}";
    first = false;
  }
  // Thread-scaling floor, adapted to the machine: a 1-core runner
  // cannot show parallel speedup, so the floor tracks 0.75x the core
  // count and caps at the CI contract's 3x.
  const double floor =
      std::min(3.0, 0.75 * std::max(1u, hw));
  json += "\n  ],\n  \"max_thread_speedup\": " +
          std::to_string(best_speedup) +
          ",\n  \"speedup_floor\": " + std::to_string(floor) +
          ",\n  \"meets_floor\": " +
          (best_speedup >= floor ? "true" : "false") + ",\n";

  // Memo-cache: cold rewrite each call vs Session (hit after warmup).
  ConstraintDatabase qdb;
  add_zone(&qdb);
  QueryEngine cold(&qdb);
  const int reps = 50;
  t0 = now_seconds();
  for (int i = 0; i < reps; ++i) {
    cold.rewrite(kQeQuery).value_or_die();
  }
  const double cold_sec = (now_seconds() - t0) / reps;

  Session session(&qdb, SessionOptions{.threads = 1});
  session.run(Request::rewrite(kQeQuery)).value_or_die();  // warm the cache
  t0 = now_seconds();
  for (int i = 0; i < reps; ++i) {
    session.run(Request::rewrite(kQeQuery)).value_or_die();
  }
  const double warm_sec = (now_seconds() - t0) / reps;
  const auto stats = session.cache().rewrite_stats();
  std::printf("\nrewrite memo-cache (QE query, %d reps):\n", reps);
  std::printf("  cold      %.6fs/call\n  cached    %.6fs/call  "
              "(speedup %.1fx, hits %llu, misses %llu)\n",
              cold_sec, warm_sec, cold_sec / warm_sec,
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));

  json += "  \"rewrite_cold_seconds\": " + std::to_string(cold_sec) +
          ",\n  \"rewrite_cached_seconds\": " + std::to_string(warm_sec) +
          ",\n  \"rewrite_cache_speedup\": " +
          std::to_string(cold_sec / warm_sec) + "\n}\n";
  if (FILE* out = std::fopen("BENCH_runtime.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("  wrote BENCH_runtime.json\n");
  }
}

void BM_McSerial(benchmark::State& state) {
  ConstraintDatabase db;
  auto phi = db.parse(kMcFormula).value_or_die();
  const std::size_t x = db.var("x"), y = db.var("y"), a = db.var("a");
  ParallelSampler sampler(&db.db(), phi, {x, y}, 50000, 31337, kChunkSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.estimate({{a, Rational(9, 10)}}, nullptr).value_or_die());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          50000);
}
BENCHMARK(BM_McSerial);

void BM_McPooled(benchmark::State& state) {
  ConstraintDatabase db;
  auto phi = db.parse(kMcFormula).value_or_die();
  const std::size_t x = db.var("x"), y = db.var("y"), a = db.var("a");
  ParallelSampler sampler(&db.db(), phi, {x, y}, 50000, 31337, kChunkSize);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.estimate({{a, Rational(9, 10)}}, &pool).value_or_die());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          50000);
}
BENCHMARK(BM_McPooled)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RewriteCold(benchmark::State& state) {
  ConstraintDatabase db;
  add_zone(&db);
  QueryEngine engine(&db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.rewrite(kQeQuery).value_or_die());
  }
}
BENCHMARK(BM_RewriteCold);

void BM_RewriteCached(benchmark::State& state) {
  ConstraintDatabase db;
  add_zone(&db);
  Session session(&db, SessionOptions{.threads = 1});
  session.run(Request::rewrite(kQeQuery)).value_or_die();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.run(Request::rewrite(kQeQuery)).value_or_die());
  }
}
BENCHMARK(BM_RewriteCached);

void BM_ExactVolumeCached(benchmark::State& state) {
  ConstraintDatabase db;
  add_zone(&db);
  Session session(&db, SessionOptions{.threads = 1});
  session.run(Request::volume("Zone(x, y)").vars({"x", "y"})).value_or_die();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.run(Request::volume("Zone(x, y)").vars({"x", "y"}))
            .value_or_die());
  }
}
BENCHMARK(BM_ExactVolumeCached);

}  // namespace

CQA_BENCH_MAIN(print_table)
