// Shared helpers for the experiment benches: each binary prints its
// experiment's headline table (key=value rows, greppable) before running
// the google-benchmark timing section.

#ifndef CQA_BENCH_BENCH_UTIL_H_
#define CQA_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace cqa_bench {

inline void header(const char* experiment, const char* claim) {
  std::printf("\n==== %s ====\n", experiment);
  std::printf("# %s\n", claim);
}

// Runs the table printer, then benchmark timing.
#define CQA_BENCH_MAIN(print_table_fn)                       \
  int main(int argc, char** argv) {                          \
    print_table_fn();                                        \
    ::benchmark::Initialize(&argc, argv);                    \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    return 0;                                                \
  }

}  // namespace cqa_bench

#endif  // CQA_BENCH_BENCH_UTIL_H_
