// E11 -- the engine of Lemma 3: AC0 circuits cannot separate
// cardinalities. An illustration (not a proof): constant-depth bounded-
// size circuits, tuned by randomized local search, separate popcount
// bands with accuracy that decays toward chance as the input width grows,
// while the band's absolute width keeps growing.

#include <algorithm>

#include "bench_util.h"
#include "cqa/approx/circuit.h"

namespace {

using namespace cqa;

void print_table() {
  cqa_bench::header(
      "E11: constant-depth circuits vs cardinality separation (Lemma 3)",
      "fixed-size depth-2/3 circuits' separation accuracy decays toward "
      "1/2 (chance) as n grows; illustration of the AC0 bound");
  std::printf("%-5s %-7s %-7s %-9s %-12s\n", "n", "depth", "width",
              "c1/c2", "accuracy");
  Xoshiro rng(12345);
  for (std::size_t depth : {2, 3}) {
    for (std::size_t n : {8, 16, 32, 64}) {
      Ac0Circuit best = optimize_separator(n, depth, 8, 3, 0.40, 0.60,
                                           600, 1000 + n + depth);
      double acc = separation_accuracy(best, 0.40, 0.60, 4000, &rng);
      std::printf("%-5zu %-7zu %-7d %-9s %-12.3f\n", n, depth, 8,
                  "0.4/0.6", acc);
    }
  }
  std::printf("\nwide margins stay separable at small n (the definition "
              "says nothing about the middle band):\n");
  std::printf("%-5s %-9s %-12s\n", "n", "c1/c2", "accuracy");
  for (std::size_t n : {8, 16, 32}) {
    // Take the best of a few restarts: local search on a deterministic
    // two-point task can stall at a plateau from an unlucky start.
    double acc = 0;
    for (std::uint64_t restart = 0; restart < 4; ++restart) {
      Ac0Circuit best = optimize_separator(n, 2, 8, 6, 0.05, 0.95, 1500,
                                           77 + n + restart * 1000);
      acc = std::max(acc, separation_accuracy(best, 0.05, 0.95, 4000, &rng));
    }
    std::printf("%-5zu %-9s %-12.3f\n", n, "0.05/0.95", acc);
  }
}

void BM_CircuitEval(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Ac0Circuit c(n, 3, 8, 3);
  Xoshiro rng(1);
  c.randomize(&rng);
  std::vector<bool> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = (rng.next() & 1) != 0;
  for (auto _ : state) {
    bool v = c.eval(input);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_CircuitEval)->Arg(16)->Arg(64)->Arg(256);

void BM_LocalSearch(benchmark::State& state) {
  for (auto _ : state) {
    Ac0Circuit best = optimize_separator(16, 2, 6, 3, 0.4, 0.6, 50, 3);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_LocalSearch)->Unit(benchmark::kMillisecond);

}  // namespace

CQA_BENCH_MAIN(print_table)
