// E8 -- the variable-independence baseline [Chomicki-Goldin-Kuper '96].
//
// The paper's introduction: [11] computes exact volume only under
// variable independence, "too restrictive" for spatial data. We measure
// both sides: the VI grid method is fast where it applies (boxes) and
// inapplicable the moment a rotation/shear couples the coordinates, while
// the Theorem-3 sweep handles both.

#include "bench_util.h"
#include "cqa/approx/random.h"
#include "cqa/geometry/affine.h"
#include "cqa/volume/semilinear_volume.h"
#include "cqa/volume/variable_independence.h"

namespace {

using namespace cqa;

std::vector<LinearCell> boxes(std::size_t count, std::uint64_t seed) {
  Xoshiro rng(seed);
  std::vector<LinearCell> out;
  for (std::size_t i = 0; i < count; ++i) {
    LinearCell cell(2);
    for (std::size_t v = 0; v < 2; ++v) {
      std::int64_t a = static_cast<std::int64_t>(rng.next() % 10);
      std::int64_t w = 1 + static_cast<std::int64_t>(rng.next() % 6);
      LinearConstraint lo;
      lo.coeffs.assign(2, Rational());
      lo.coeffs[v] = Rational(-1);
      lo.rhs = Rational(-a, 3);
      lo.cmp = LinCmp::kLe;
      LinearConstraint hi;
      hi.coeffs.assign(2, Rational());
      hi.coeffs[v] = Rational(1);
      hi.rhs = Rational(a + w, 3);
      hi.cmp = LinCmp::kLe;
      cell.add(std::move(lo));
      cell.add(std::move(hi));
    }
    out.push_back(std::move(cell));
  }
  return out;
}

std::vector<LinearCell> rotated(const std::vector<LinearCell>& cells,
                                const Rational& t) {
  AffineMap rot = AffineMap::rotation2d(t);
  std::vector<LinearCell> out;
  for (const auto& c : cells) out.push_back(rot.apply(c).value_or_die());
  return out;
}

void print_table() {
  cqa_bench::header(
      "E8: variable independence -- the [11] baseline vs the sweep",
      "VI grid volume == sweep volume on boxes; rotation breaks VI "
      "(detector says no) while the sweep still answers exactly");
  std::printf("%-7s %-9s %-14s %-14s %-7s\n", "cells", "VI?", "grid",
              "sweep", "agree");
  for (std::size_t count : {2, 4, 8, 12}) {
    auto cells = boxes(count, 500 + count);
    bool vi = is_variable_independent(cells);
    Rational grid = volume_variable_independent(cells).value_or_die();
    Rational sweep = semilinear_volume(cells).value_or_die();
    std::printf("%-7zu %-9s %-14s %-14s %-7s\n", count, vi ? "yes" : "no",
                grid.to_string().c_str(), sweep.to_string().c_str(),
                grid == sweep ? "yes" : "NO");
  }
  std::printf("\nrotated by the Pythagorean angle t = 1/2:\n");
  std::printf("%-7s %-9s %-18s %-20s\n", "cells", "VI?", "grid",
              "sweep(=exact)");
  for (std::size_t count : {2, 4}) {
    auto cells = rotated(boxes(count, 500 + count), Rational(1, 2));
    bool vi = is_variable_independent(cells);
    auto grid = volume_variable_independent(cells);
    Rational sweep = semilinear_volume(cells).value_or_die();
    // Rotation preserves volume: cross-check against the unrotated set.
    Rational original =
        semilinear_volume(boxes(count, 500 + count)).value_or_die();
    CQA_CHECK(sweep == original);
    std::printf("%-7zu %-9s %-18s %-20s\n", count, vi ? "yes" : "no",
                grid.is_ok() ? grid.value().to_string().c_str()
                             : "(rejected)",
                sweep.to_string().c_str());
  }
}

void BM_GridVolume(benchmark::State& state) {
  auto cells = boxes(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    auto v = volume_variable_independent(cells);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_GridVolume)->Arg(4)->Arg(8)->Arg(16);

void BM_SweepOnSameBoxes(benchmark::State& state) {
  auto cells = boxes(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    auto v = semilinear_volume_sweep(cells);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SweepOnSameBoxes)->Arg(4)->Arg(8);

void BM_SweepOnRotated(benchmark::State& state) {
  auto cells =
      rotated(boxes(static_cast<std::size_t>(state.range(0)), 42),
              Rational(1, 2));
  for (auto _ : state) {
    auto v = semilinear_volume(cells);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SweepOnRotated)->Arg(4);

}  // namespace

CQA_BENCH_MAIN(print_table)
