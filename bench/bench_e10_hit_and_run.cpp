// E10 -- the introduction's complexity landscape: exact convex volume is
// #P-hard [Dyer-Frieze '88], randomized approximation is polynomial
// [Dyer-Frieze-Kannan '91]. We run the DFK-style hit-and-run estimator
// against the exact engine across dimensions and report accuracy and the
// diverging cost of exactness.

#include <cmath>

#include "bench_util.h"
#include "cqa/approx/hit_and_run.h"
#include "cqa/geometry/polytope_volume.h"

namespace {

using namespace cqa;

void print_table() {
  cqa_bench::header(
      "E10: randomized convex volume (DFK) vs exact",
      "relative error shrinks with samples; the estimator's cost is "
      "polynomial while exact methods grow combinatorially with dim");
  std::printf("%-10s %-4s %-10s %-12s %-10s %-8s\n", "body", "dim",
              "exact", "estimate", "rel_err", "phases");
  struct Body {
    const char* name;
    Polyhedron poly;
  };
  std::vector<Body> bodies;
  for (std::size_t d = 2; d <= 5; ++d) {
    bodies.push_back({"cube", Polyhedron::box(d, Rational(0), Rational(2))});
  }
  for (std::size_t d = 2; d <= 4; ++d) {
    bodies.push_back({"simplex", Polyhedron::simplex(d, Rational(1))});
  }
  for (auto& b : bodies) {
    double exact = polytope_volume(b.poly).value_or_die().to_double();
    auto est = hit_and_run_volume(b.poly, 8000, 99).value_or_die();
    double rel = std::fabs(est.volume - exact) / exact;
    std::printf("%-10s %-4zu %-10.4f %-12.4f %-10.4f %-8zu\n", b.name,
                b.poly.dim(), exact, est.volume, rel, est.phases);
  }
  std::printf("\nsample-count scaling on the 3-cube (exact vol 8):\n");
  std::printf("%-10s %-12s %-10s\n", "samples", "estimate", "rel_err");
  Polyhedron cube = Polyhedron::box(3, Rational(0), Rational(2));
  for (std::size_t s : {500, 2000, 8000, 32000}) {
    auto est = hit_and_run_volume(cube, s, 7).value_or_die();
    std::printf("%-10zu %-12.4f %-10.4f\n", s, est.volume,
                std::fabs(est.volume - 8.0) / 8.0);
  }
}

void BM_HitAndRun(benchmark::State& state) {
  Polyhedron cube = Polyhedron::box(
      static_cast<std::size_t>(state.range(0)), Rational(0), Rational(2));
  for (auto _ : state) {
    auto v = hit_and_run_volume(cube, 2000, 5);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_HitAndRun)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Unit(
    benchmark::kMillisecond);

void BM_ExactLasserre(benchmark::State& state) {
  Polyhedron cube = Polyhedron::box(
      static_cast<std::size_t>(state.range(0)), Rational(0), Rational(2));
  for (auto _ : state) {
    auto v = polytope_volume(cube);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExactLasserre)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Unit(
    benchmark::kMillisecond);

}  // namespace

CQA_BENCH_MAIN(print_table)
