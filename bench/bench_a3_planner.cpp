// A3 -- adaptive planner: Session::run routes a mixed workload (easy
// linear cells, a QE-heavy query, nonlinear membership-only sets)
// through cqa::plan and must beat every fixed single-strategy baseline
// on total wall-clock at equal (eps, delta) among the baselines that
// actually cover the workload at that accuracy.
//
// The headline table runs the workload once per configuration, writes
// BENCH_planner.json (parsed by CI: every strategy entry must be
// present), then demonstrates deadline degradation: a tight budget must
// come back Degraded with best-so-far bars, not an error. Planner
// decisions are left visible in the session metrics dump.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cqa/core/constraint_database.h"
#include "cqa/plan/planner.h"
#include "cqa/runtime/session.h"

namespace {

using namespace cqa;

constexpr double kEpsilon = 0.01;
constexpr double kDelta = 0.05;

struct WorkItem {
  const char* name;
  const char* query;
};

// Every denotation is a subset of the unit box, so VOL_I (what the MC
// strategies estimate) and the exact volume agree and baselines are
// comparable.
const std::vector<WorkItem>& workload() {
  static const std::vector<WorkItem> kItems = {
      {"box_cut", "0 <= x & x <= 1 & 0 <= y & y <= 1 & x + y <= 3/2"},
      {"triangle", "x >= 0 & y >= 0 & x + y <= 1"},
      {"strips",
       "(0 <= x & x <= 1/4 | 1/2 <= x & x <= 3/4) & 0 <= y & y <= 1"},
      {"qe_slab",
       "E u. (0 <= u & u <= 1 & 0 <= x & x <= u & 0 <= y & y <= 1/2)"},
      {"diamond", "x + y <= 3/2 & x - y <= 1/2 & y - x <= 1/2 & "
                  "x + y >= 1/2 & 0 <= x & x <= 1 & 0 <= y & y <= 1"},
      {"disk", "x^2 + y^2 <= 9/10 & 0 <= x & 0 <= y"},
      {"parabola", "0 <= x & x <= 1 & 0 <= y & y <= 1 & y >= x^2"},
  };
  return kItems;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Request make_request(const WorkItem& item) {
  Request req;
  req.kind = RequestKind::kVolume;
  req.query = item.query;
  req.output_vars = {"x", "y"};
  req.budget.epsilon = kEpsilon;
  req.budget.delta = kDelta;
  req.seed = 31337;
  return req;
}

struct ConfigResult {
  double seconds = 0.0;
  int answered = 0;
  int accuracy_met = 0;
};

// Guaranteed accuracy: exact answers always qualify; estimates qualify
// when their certified half-width fits the budget. The half-width is
// reconstructed from bars stored as estimate +/- eps, so allow one part
// in 10^9 of slack for the double round-trip.
bool meets_accuracy(const VolumeAnswer& v) {
  if (v.exact) return true;
  if (v.lower && v.upper) {
    return (*v.upper - *v.lower) / 2.0 <= kEpsilon * (1.0 + 1e-9);
  }
  return false;
}

ConfigResult run_config(Session* session,
                        const std::optional<VolumeStrategy>& forced) {
  ConfigResult r;
  const double t0 = now_seconds();
  for (const WorkItem& item : workload()) {
    Request req = make_request(item);
    req.strategy = forced;
    auto a = session->run(req);
    if (!a.is_ok()) continue;
    ++r.answered;
    if (meets_accuracy(a.value().volume)) ++r.accuracy_met;
  }
  r.seconds = now_seconds() - t0;
  return r;
}

std::string config_json(const char* name, const ConfigResult& r) {
  return std::string("    \"") + name + "\": {\"seconds\": " +
         std::to_string(r.seconds) + ", \"answered\": " +
         std::to_string(r.answered) + ", \"accuracy_met\": " +
         std::to_string(r.accuracy_met) + "}";
}

void print_table() {
  cqa_bench::header(
      "A3: adaptive planner -- Session::run vs fixed strategies",
      "on a mixed workload at equal (eps, delta), the planner must beat "
      "every fixed single-strategy baseline that covers the workload; "
      "a deadline-bounded run must degrade, not fail");

  const std::size_t n = workload().size();
  std::printf("workload: %zu queries, eps=%g delta=%g\n\n", n, kEpsilon,
              kDelta);

  // Fresh session per configuration so memo-caches cannot leak speed
  // between configurations.
  struct Baseline {
    const char* name;
    std::optional<VolumeStrategy> forced;
  };
  const std::vector<Baseline> configs = {
      {"planner", std::nullopt},
      {"exact", VolumeStrategy::kAuto},
      {"mc", VolumeStrategy::kMonteCarlo},
      {"hit_and_run", VolumeStrategy::kHitAndRun},
      {"trivial_half", VolumeStrategy::kTrivialHalf},
  };
  std::printf("%-14s %-10s %-10s %-12s\n", "config", "seconds", "answered",
              "accuracy_met");
  std::vector<std::pair<std::string, ConfigResult>> results;
  for (const Baseline& b : configs) {
    ConstraintDatabase db;
    Session session(&db);
    ConfigResult r = run_config(&session, b.forced);
    std::printf("%-14s %-10.4f %-10d %-12d\n", b.name, r.seconds,
                r.answered, r.accuracy_met);
    results.emplace_back(b.name, r);
  }

  // The planner must dominate: full coverage at full accuracy, faster
  // than every baseline that matches that coverage+accuracy.
  const ConfigResult& planner = results[0].second;
  bool beats_all = planner.answered == static_cast<int>(n) &&
                   planner.accuracy_met == static_cast<int>(n);
  for (std::size_t i = 1; i < results.size(); ++i) {
    const ConfigResult& b = results[i].second;
    if (b.answered == static_cast<int>(n) &&
        b.accuracy_met == static_cast<int>(n) &&
        b.seconds <= planner.seconds) {
      beats_all = false;
    }
  }
  std::printf("\nplanner dominates (covers all, fastest at accuracy): %s\n",
              beats_all ? "yes" : "NO");

  // Show one representative decision per regime.
  {
    ConstraintDatabase db;
    Session session(&db);
    for (const char* name : {"triangle", "disk"}) {
      for (const WorkItem& item : workload()) {
        if (std::string(item.name) != name) continue;
        auto a = session.run(make_request(item));
        if (a.is_ok() && a.value().plan) {
          std::printf("\n[%s]\n%s", item.name,
                      plan_to_string(*a.value().plan).c_str());
        }
      }
    }
  }

  // Deadline degradation: an eps far below what 3 ms of sampling can
  // certify. The answer must be Degraded best-so-far, never an error.
  ConstraintDatabase db;
  Session session(&db);
  Request tight = make_request(workload()[5]);  // disk
  tight.budget.epsilon = 0.001;
  tight.budget.deadline_ms = 3;
  auto degraded = session.run(tight);
  std::string deadline_json = "    \"error\": true";
  if (degraded.is_ok()) {
    const Answer& a = degraded.value();
    std::printf("\ndeadline demo (disk, eps=0.001, deadline=3ms):\n"
                "  status=%s estimate=%.4f bars=[%.4f, %.4f] "
                "points=%zu/%zu\n",
                a.degraded() ? "Degraded" : "Ok",
                a.volume.estimate.value_or(0.0),
                a.volume.lower.value_or(0.0), a.volume.upper.value_or(1.0),
                a.volume.points_evaluated, a.volume.points_requested);
    deadline_json =
        std::string("    \"degraded\": ") +
        (a.degraded() ? "true" : "false") +
        ",\n    \"estimate\": " +
        std::to_string(a.volume.estimate.value_or(0.0)) +
        ",\n    \"lower\": " + std::to_string(a.volume.lower.value_or(0.0)) +
        ",\n    \"upper\": " + std::to_string(a.volume.upper.value_or(1.0)) +
        ",\n    \"points_evaluated\": " +
        std::to_string(a.volume.points_evaluated) +
        ",\n    \"points_requested\": " +
        std::to_string(a.volume.points_requested);
  }
  std::printf("\nsession metrics after deadline demo:\n%s\n",
              session.metrics_dump().c_str());

  std::string json = "{\n  \"workload_queries\": " + std::to_string(n) +
                     ",\n  \"epsilon\": " + std::to_string(kEpsilon) +
                     ",\n  \"delta\": " + std::to_string(kDelta) +
                     ",\n  \"strategies\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    json += config_json(results[i].first.c_str(), results[i].second);
    json += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  json += "  },\n  \"planner_beats_all_covering_baselines\": ";
  json += beats_all ? "true" : "false";
  json += ",\n  \"deadline_demo\": {\n" + deadline_json + "\n  }\n}\n";
  if (FILE* out = std::fopen("BENCH_planner.json", "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("  wrote BENCH_planner.json\n");
  }
}

void BM_PlanOnly(benchmark::State& state) {
  FormulaStats stats;
  stats.dimension = 2;
  stats.atoms = 6;
  stats.quantifiers = 1;
  stats.linear = true;
  stats.quantifier_free = true;
  stats.cell_estimate = 4;
  stats.vc_dim = 5.0;
  Budget budget;
  budget.epsilon = kEpsilon;
  budget.delta = kDelta;
  budget.deadline_ms = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_volume(stats, budget));
  }
}
BENCHMARK(BM_PlanOnly);

void BM_SessionRunLinear(benchmark::State& state) {
  ConstraintDatabase db;
  Session session(&db);
  const Request req = make_request(workload()[1]);  // triangle
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(req).value_or_die());
  }
}
BENCHMARK(BM_SessionRunLinear);

void BM_SessionRunNonlinear(benchmark::State& state) {
  ConstraintDatabase db;
  Session session(&db);
  const Request req = make_request(workload()[5]);  // disk
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(req).value_or_die());
  }
}
BENCHMARK(BM_SessionRunNonlinear);

}  // namespace

CQA_BENCH_MAIN(print_table)
