// A1 (ablation) -- what makes FO+POLY+SUM evaluable in practice.
//
// DESIGN.md's two load-bearing evaluator choices, measured:
//   1. predicate pushdown in range-restricted enumeration (guard conjuncts
//      checked as soon as their variables bind);
//   2. compile-once caching of linear subqueries (symbolic QE instead of
//      per-tuple QE).
// The Section-5 polygon-area program runs under the optimized plan and the
// naive plan (whole psi1 per tuple, no pushdown); same exact answers,
// orders-of-magnitude apart. This quantifies the paper's remark that the
// FO+POLY+SUM syntax "is quite awkward" to evaluate directly.

#include <chrono>
#include <string>

#include "bench_util.h"
#include "cqa/aggregate/polygon_area.h"
#include "cqa/core/constraint_database.h"

namespace {

using namespace cqa;

struct Poly {
  const char* name;
  const char* formula;
};

const Poly kPolys[] = {
    {"triangle", "0 <= x & 0 <= y & x + y <= 2"},
    {"square", "0 <= x & x <= 3/2 & 0 <= y & y <= 3/2"},
    {"pentagon", "0 <= x & x <= 2 & 0 <= y & y <= 2 & x + y <= 3"},
};

double run_once(const Poly& p, bool optimized, Rational* area) {
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("P", {"x", "y"}, p.formula).is_ok());
  PolygonProgram prog = build_polygon_program("P", optimized);
  auto t0 = std::chrono::steady_clock::now();
  auto r = prog.area_term->eval(db.db(), {});
  auto t1 = std::chrono::steady_clock::now();
  CQA_CHECK(r.is_ok());
  *area = r.value();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void print_table() {
  cqa_bench::header(
      "A1: evaluator ablation (pushdown + compiled queries vs naive)",
      "identical exact answers; the optimized plan is what makes the "
      "in-language program usable");
  std::printf("%-10s %-12s %-14s %-14s %-10s\n", "polygon", "area",
              "optimized_ms", "naive_ms", "speedup");
  for (const Poly& p : kPolys) {
    Rational a1, a2;
    double fast = run_once(p, true, &a1);
    // The naive pentagon takes ~5 minutes (measured once: 300s vs 3.3s,
    // a 90x gap); keep routine runs fast by skipping it here.
    const bool run_naive = std::string(p.name) != "pentagon";
    if (run_naive) {
      double slow = run_once(p, false, &a2);
      CQA_CHECK(a1 == a2);
      std::printf("%-10s %-12s %-14.1f %-14.1f %-10.1fx\n", p.name,
                  a1.to_string().c_str(), fast, slow, slow / fast);
    } else {
      std::printf("%-10s %-12s %-14.1f %-14s %-10s\n", p.name,
                  a1.to_string().c_str(), fast, "(~300000, skipped)",
                  "~90x");
    }
  }
}

void BM_OptimizedPlan(benchmark::State& state) {
  const Poly& p = kPolys[static_cast<std::size_t>(state.range(0))];
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("P", {"x", "y"}, p.formula).is_ok());
  PolygonProgram prog = build_polygon_program("P", true);
  for (auto _ : state) {
    auto r = prog.area_term->eval(db.db(), {});
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_OptimizedPlan)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_NaivePlan(benchmark::State& state) {
  const Poly& p = kPolys[static_cast<std::size_t>(state.range(0))];
  ConstraintDatabase db;
  CQA_CHECK(db.add_region("P", {"x", "y"}, p.formula).is_ok());
  PolygonProgram prog = build_polygon_program("P", false);
  for (auto _ : state) {
    auto r = prog.area_term->eval(db.db(), {});
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(p.name);
}
BENCHMARK(BM_NaivePlan)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

CQA_BENCH_MAIN(print_table)
