// E1 -- Section 3's example: the Karpinski-Macintyre derandomized
// approximation formula blows up (paper: >= 1e9 atoms, >= 1e11 quantifiers
// at eps = 1/10), while the Theorem-4 randomized counterpart is cheap and
// the exact answer VOL_I = (x2^2 - x1^2)/2 is available from the exact
// engine for validation.

#include <cmath>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cqa/approx/monte_carlo.h"
#include "cqa/core/constraint_database.h"
#include "cqa/logic/transform.h"
#include "cqa/vc/blowup.h"
#include "cqa/volume/semilinear_volume.h"

namespace {

using namespace cqa;

void print_table() {
  cqa_bench::header("E1: KM formula blow-up vs Theorem-4 sampling",
                    "paper claims ~1e9 atoms / ~1e11 quantifiers at "
                    "eps=1/10; any estimate on that side of 'infeasible' "
                    "reproduces the conclusion");
  std::printf("%-6s %-8s %-10s %-12s %-14s %-12s\n", "n", "eps", "KM_M",
              "KM_atoms", "KM_quantifiers", "MC_samples");
  for (std::size_t n : {2, 8, 32, 128, 512}) {
    for (double eps : {0.5, 0.25, 0.1, 0.01}) {
      BlowupEstimate km = km_blowup_section3_example(n, eps);
      std::size_t mc = blumer_sample_bound(eps, 0.05, 4.0);
      std::printf("%-6zu %-8.2f %-10zu %-12.3e %-14.3e %-12zu\n", n, eps,
                  km.sample_size, km.atom_count, km.quantifiers, mc);
    }
  }

  // Validation: the query's exact volume (b^2 - a^2)/2 from the exact
  // engine, and the Theorem-4 estimate, at several (a, b).
  std::printf("\n%-8s %-8s %-12s %-12s %-10s\n", "x1", "x2", "exact",
              "mc_estimate", "abs_err");
  ConstraintDatabase db;
  auto phi = db.parse("x1 < y1 & y1 < x2 & 0 <= y2 & y2 <= y1")
                 .value_or_die();
  const std::size_t y1 = db.var("y1"), y2 = db.var("y2");
  const std::size_t x1 = db.var("x1"), x2 = db.var("x2");
  McVolumeEstimator est(&db.db(), phi, {y1, y2},
                        blumer_sample_bound(0.02, 0.05, 4.0), 11);
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {1, 3}, {0, 4}, {1, 2}, {0, 2}}) {
    Rational ra(a, 4), rb(b, 4);
    // Exact: VOL_I = (b^2 - a^2)/2 for 0 <= a <= b <= 1.
    Rational exact = (rb * rb - ra * ra) * Rational(1, 2);
    // Exact engine agrees (cross-check).
    auto f = substitute_vars(
        phi, {{x1, Polynomial::constant(ra)}, {x2, Polynomial::constant(rb)}});
    std::map<std::size_t, Polynomial> remap = {
        {y1, Polynomial::variable(0)}, {y2, Polynomial::variable(1)}};
    Rational engine =
        formula_volume_I(substitute_vars(f, remap), 2).value_or_die();
    CQA_CHECK(engine == exact);
    double mc = est.estimate({{x1, ra}, {x2, rb}}).value_or_die();
    std::printf("%-8s %-8s %-12s %-12.5f %-10.5f\n", ra.to_string().c_str(),
                rb.to_string().c_str(), exact.to_string().c_str(), mc,
                std::fabs(mc - exact.to_double()));
  }
}

void BM_McEstimateSection3(benchmark::State& state) {
  ConstraintDatabase db;
  auto phi = db.parse("x1 < y1 & y1 < x2 & 0 <= y2 & y2 <= y1")
                 .value_or_die();
  const std::size_t y1 = db.var("y1"), y2 = db.var("y2");
  const std::size_t x1 = db.var("x1"), x2 = db.var("x2");
  const double eps = 1.0 / static_cast<double>(state.range(0));
  McVolumeEstimator est(&db.db(), phi, {y1, y2},
                        blumer_sample_bound(eps, 0.05, 4.0), 7);
  for (auto _ : state) {
    auto v = est.estimate({{x1, Rational(1, 4)}, {x2, Rational(3, 4)}});
    benchmark::DoNotOptimize(v);
  }
  state.counters["samples"] =
      static_cast<double>(blumer_sample_bound(eps, 0.05, 4.0));
}
BENCHMARK(BM_McEstimateSection3)->Arg(2)->Arg(4)->Arg(10);

void BM_KmBlowupEstimate(benchmark::State& state) {
  for (auto _ : state) {
    auto e = km_blowup_section3_example(
        static_cast<std::size_t>(state.range(0)), 0.1);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_KmBlowupEstimate)->Arg(8)->Arg(512);

}  // namespace

CQA_BENCH_MAIN(print_table)
