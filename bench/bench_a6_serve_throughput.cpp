// A6 -- serve-layer throughput: submit() with coalescing and MC
// batching must beat thread-per-request run() by >= 2x on a duplicate-
// heavy Monte-Carlo workload at equal thread count. The workload is the
// serving layer's reason to exist: K distinct forced-MC volume requests,
// each arriving D times (dashboards refreshing the same query), so the
// scheduler serves K computations where the baseline serves K*D.
//
// Both sides get the same concurrency: T caller threads draining the
// request list through run() versus T scheduler executors draining the
// submit() queue. Min-of-k timing, same estimator rationale as A5.
// Writes BENCH_serve.json with a speedup_ok verdict for the CI gate.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cqa/runtime/session.h"
#include "cqa/serve/scheduler.h"

namespace {

using namespace cqa;

constexpr int kReps = 5;               // min-of-k repetitions per side
constexpr std::size_t kDistinct = 6;   // distinct request signatures
constexpr std::size_t kDupes = 8;      // arrivals per signature
constexpr std::size_t kThreads = 2;    // callers vs executors
constexpr double kSpeedupFloor = 2.0;  // acceptance bar

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The i-th distinct signature: a nonlinear membership (never exactly
// cached) with its own seed, pinned to Monte-Carlo so both sides do the
// same sampling work per computation.
Request make_request(std::size_t i) {
  return Request::volume("x^2 + y^2 <= 9/10 & 0 <= x & 0 <= y")
      .vars({"x", "y"})
      .strategy(VolumeStrategy::kMonteCarlo)
      .epsilon(0.02)
      .vc_dim(3.0)
      .seed(1000 + i)
      .build();
}

std::vector<Request> workload() {
  std::vector<Request> reqs;
  for (std::size_t d = 0; d < kDupes; ++d) {
    for (std::size_t i = 0; i < kDistinct; ++i) {
      reqs.push_back(make_request(i));
    }
  }
  return reqs;
}

SessionOptions session_opts() {
  SessionOptions opts;
  opts.threads = kThreads;
  opts.serve_executors = kThreads;
  opts.serve_queue_capacity = 4096;
  return opts;
}

// Baseline: T caller threads drain the request list via synchronous
// run(). Every arrival costs a full MC computation.
double time_thread_per_request(const std::vector<Request>& reqs) {
  ConstraintDatabase db;
  Session session(&db, session_opts());
  std::atomic<std::size_t> next{0};
  std::atomic<int> failures{0};
  const double t0 = now_seconds();
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    callers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= reqs.size()) return;
        if (!session.run(reqs[i]).is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : callers) th.join();
  const double dt = now_seconds() - t0;
  CQA_CHECK(failures.load() == 0);
  return dt;
}

// Serving side: the same arrivals submitted up front, drained by T
// executors with duplicate coalescing and MC batch fusion.
double time_submit(const std::vector<Request>& reqs,
                   std::uint64_t* coalesced, std::uint64_t* batched,
                   std::uint64_t* points) {
  ConstraintDatabase db;
  Session session(&db, session_opts());
  session.scheduler();  // create executors outside the timed region
  const double t0 = now_seconds();
  std::vector<serve::Ticket> tickets;
  tickets.reserve(reqs.size());
  for (const Request& r : reqs) tickets.push_back(session.submit(r));
  int failures = 0;
  for (auto& t : tickets) {
    if (!t.wait().is_ok()) ++failures;
  }
  const double dt = now_seconds() - t0;
  CQA_CHECK(failures == 0);
  *coalesced = session.metrics().counter_value("serve_coalesced_total");
  *batched = session.metrics().counter_value("serve_mc_batched_total");
  *points = session.metrics().counter_value("mc_points_evaluated_total");
  return dt;
}

void print_table() {
  cqa_bench::header(
      "A6: serve throughput (submit batching vs thread-per-request run)",
      "coalescing + MC batch fusion serve duplicate-heavy traffic >= 2x "
      "faster than synchronous run() at equal thread count");

  const std::vector<Request> reqs = workload();
  double run_sec = 1e100, submit_sec = 1e100;
  std::uint64_t coalesced = 0, batched = 0, points = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    run_sec = std::min(run_sec, time_thread_per_request(reqs));
    std::uint64_t c = 0, b = 0, p = 0;
    const double sec = time_submit(reqs, &c, &b, &p);
    if (sec < submit_sec) {
      submit_sec = sec;
      points = p;
    }
    coalesced = std::max(coalesced, c);
    batched = std::max(batched, b);
  }
  const double speedup = submit_sec > 0 ? run_sec / submit_sec : 0.0;
  const bool ok = speedup >= kSpeedupFloor;
  const double samples_per_sec =
      submit_sec > 0 ? static_cast<double>(points) / submit_sec : 0.0;

  std::printf("requests            %zu (%zu distinct x %zu arrivals)\n",
              reqs.size(), kDistinct, kDupes);
  std::printf("threads             %zu callers vs %zu executors\n",
              kThreads, kThreads);
  std::printf("run() total         %.4fs (min of %d)\n", run_sec, kReps);
  std::printf("submit() total      %.4fs (min of %d)\n", submit_sec, kReps);
  std::printf("coalesced/batched   %llu / %llu\n",
              static_cast<unsigned long long>(coalesced),
              static_cast<unsigned long long>(batched));
  std::printf("speedup             %.2fx (floor %.1fx) -> %s\n", speedup,
              kSpeedupFloor, ok ? "ok" : "UNDER FLOOR");
  std::printf("MC throughput       %.0f samples/sec over submit()\n",
              samples_per_sec);

  std::string json =
      "{\n  \"reps\": " + std::to_string(kReps) +
      ",\n  \"requests\": " + std::to_string(reqs.size()) +
      ",\n  \"distinct\": " + std::to_string(kDistinct) +
      ",\n  \"threads\": " + std::to_string(kThreads) +
      ",\n  \"run_sec\": " + std::to_string(run_sec) +
      ",\n  \"submit_sec\": " + std::to_string(submit_sec) +
      ",\n  \"speedup\": " + std::to_string(speedup) +
      ",\n  \"samples_per_sec\": " + std::to_string(samples_per_sec) +
      ",\n  \"coalesced_total\": " + std::to_string(coalesced) +
      ",\n  \"batched_total\": " + std::to_string(batched) +
      ",\n  \"speedup_floor\": " + std::to_string(kSpeedupFloor) +
      ",\n  \"speedup_ok\": " + (ok ? std::string("true")
                                    : std::string("false")) +
      "\n}\n";
  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_serve.json\n");
  }
}

// Micro costs of the serving primitives under google-benchmark timing.
void BM_SubmitResolveTrivial(benchmark::State& state) {
  // Queue admission + executor round-trip for a request that sheds no
  // work: measures the scheduler's fixed overhead per ticket.
  ConstraintDatabase db;
  Session session(&db, session_opts());
  Request req = Request::volume("x >= 0 & x <= 1 & y >= 0 & y <= 1")
                    .vars({"x", "y"});
  session.run(req).value_or_die();  // warm the volume cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.submit(req).wait().is_ok());
  }
}
BENCHMARK(BM_SubmitResolveTrivial);

void BM_RunCachedBaseline(benchmark::State& state) {
  // The synchronous floor the scheduler overhead is judged against.
  ConstraintDatabase db;
  Session session(&db, session_opts());
  Request req = Request::volume("x >= 0 & x <= 1 & y >= 0 & y <= 1")
                    .vars({"x", "y"});
  session.run(req).value_or_die();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(req).is_ok());
  }
}
BENCHMARK(BM_RunCachedBaseline);

}  // namespace

CQA_BENCH_MAIN(print_table)
