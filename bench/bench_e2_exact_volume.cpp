// E2 -- Theorem 3: exact volume of arbitrary semi-linear sets.
//
// Structured + randomized workloads across dimension and cell count;
// the sweep engine, inclusion-exclusion, and (where applicable) the
// single-polytope Lasserre oracle must agree exactly; timings show the
// crossover between the strategies.

#include <cstdlib>

#include "bench_util.h"
#include "cqa/approx/random.h"
#include "cqa/geometry/affine.h"
#include "cqa/volume/inclusion_exclusion.h"
#include "cqa/volume/semilinear_volume.h"

namespace {

using namespace cqa;

// Random axis-aligned boxes in [0, 4]^dim with rational corners.
std::vector<LinearCell> random_boxes(std::size_t dim, std::size_t count,
                                     std::uint64_t seed) {
  Xoshiro rng(seed);
  std::vector<LinearCell> cells;
  for (std::size_t c = 0; c < count; ++c) {
    LinearCell cell(dim);
    for (std::size_t v = 0; v < dim; ++v) {
      std::int64_t a = static_cast<std::int64_t>(rng.next() % 12);
      std::int64_t w = 1 + static_cast<std::int64_t>(rng.next() % 8);
      LinearConstraint lo;
      lo.coeffs.assign(dim, Rational());
      lo.coeffs[v] = Rational(-1);
      lo.rhs = Rational(-a, 4);
      lo.cmp = LinCmp::kLe;
      LinearConstraint hi;
      hi.coeffs.assign(dim, Rational());
      hi.coeffs[v] = Rational(1);
      hi.rhs = Rational(a + w, 4);
      hi.cmp = LinCmp::kLe;
      cell.add(std::move(lo));
      cell.add(std::move(hi));
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

// Rotated/sheared copies to defeat every axis-aligned shortcut.
std::vector<LinearCell> skewed_cells(std::size_t count, std::uint64_t seed) {
  auto boxes = random_boxes(2, count, seed);
  Xoshiro rng(seed ^ 0xabcdef);
  std::vector<LinearCell> out;
  for (auto& b : boxes) {
    AffineMap rot = AffineMap::rotation2d(
        Rational(static_cast<std::int64_t>(rng.next() % 5), 7));
    out.push_back(rot.apply(b).value_or_die());
  }
  return out;
}

void print_table() {
  cqa_bench::header(
      "E2: exact semi-linear volume (sweep vs inclusion-exclusion)",
      "all exact strategies must agree to the last rational digit; "
      "sweep scales past inclusion-exclusion's 2^cells wall");
  std::printf("%-5s %-6s %-14s %-14s %-8s %-10s %-10s\n", "dim", "cells",
              "volume(sweep)", "volume(incl)", "agree", "sweep_bps",
              "sections");
  for (std::size_t dim : {1, 2, 3}) {
    for (std::size_t count : {1, 2, 4, 6, 8}) {
      auto cells = random_boxes(dim, count, 1000 + dim * 100 + count);
      VolumeStats stats;
      Rational sweep = semilinear_volume_sweep(cells, &stats).value_or_die();
      Rational incl = volume_inclusion_exclusion(cells).value_or_die();
      Rational fast = semilinear_volume(cells).value_or_die();
      CQA_CHECK(sweep == incl);
      CQA_CHECK(sweep == fast);
      std::printf("%-5zu %-6zu %-14s %-14s %-8s %-10zu %-10zu\n", dim,
                  count, sweep.to_string().c_str(), incl.to_string().c_str(),
                  "yes", stats.breakpoints, stats.sections_evaluated);
    }
  }
  // Rotated cells: variable-independence-breaking workload.
  std::printf("\nrotated 2-D cells (non-axis-aligned):\n");
  std::printf("%-6s %-18s %-8s\n", "cells", "volume", "agree");
  for (std::size_t count : {2, 4, 6}) {
    auto cells = skewed_cells(count, 77 + count);
    Rational sweep = semilinear_volume_sweep(cells).value_or_die();
    Rational incl = volume_inclusion_exclusion(cells).value_or_die();
    CQA_CHECK(sweep == incl);
    std::printf("%-6zu %-18s %-8s\n", count, sweep.to_string().c_str(),
                "yes");
  }
}

void BM_SweepVolume(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const std::size_t count = static_cast<std::size_t>(state.range(1));
  auto cells = random_boxes(dim, count, 42);
  for (auto _ : state) {
    auto v = semilinear_volume_sweep(cells);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SweepVolume)
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({3, 2})
    ->Args({3, 4});

void BM_InclusionExclusion(benchmark::State& state) {
  const std::size_t dim = static_cast<std::size_t>(state.range(0));
  const std::size_t count = static_cast<std::size_t>(state.range(1));
  auto cells = random_boxes(dim, count, 42);
  for (auto _ : state) {
    auto v = volume_inclusion_exclusion(cells);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_InclusionExclusion)
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({3, 2})
    ->Args({3, 4});

void BM_AutoFastPath(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  auto cells = random_boxes(2, count, 42);
  for (auto _ : state) {
    auto v = semilinear_volume(cells);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AutoFastPath)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

CQA_BENCH_MAIN(print_table)
