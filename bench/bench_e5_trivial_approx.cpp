// E5 -- Proposition 4 + Theorem 2: the trivial half-approximation is
// definable and, for eps < 1/2, nothing better is.
//
// We sweep sets with VOL_I covering [0, 1], verify the trivial operator's
// error never exceeds 1/2 (and hits it in the worst case), and show that
// every *constant* oracle has worst-case error >= 1/2 -- the best any
// FO+LIN/FO+POLY-definable operator can do, per Theorem 2.

#include <cmath>

#include "bench_util.h"
#include "cqa/approx/gadgets.h"
#include "cqa/core/constraint_database.h"
#include "cqa/volume/semilinear_volume.h"

namespace {

using namespace cqa;

std::vector<LinearCell> slab(const Rational& width) {
  // [0, width] x [0, 1].
  LinearCell cell(2);
  LinearConstraint hi;
  hi.coeffs = {Rational(1), Rational(0)};
  hi.rhs = width;
  hi.cmp = LinCmp::kLe;
  cell.add(std::move(hi));
  return {cell.intersect_box(Rational(0), Rational(1))};
}

void print_table() {
  cqa_bench::header(
      "E5: the trivial 1/2-approximation (Prop 4) is optimal (Thm 2)",
      "the operator's error is always <= 1/2; no constant beats 1/2 in "
      "the worst case, and eps < 1/2 operators are undefinable");
  std::printf("%-10s %-12s %-10s %-10s\n", "VOL_I", "trivial", "abs_err",
              "err<=1/2");
  Rational worst;
  for (int i = 0; i <= 10; ++i) {
    Rational w(i, 10);
    auto cells = slab(w);
    Rational vol = semilinear_volume(cells).value_or_die();
    Rational approx = trivial_half_approximation(cells, 2).value_or_die();
    Rational err = (approx - vol).abs();
    if (err > worst) worst = err;
    std::printf("%-10s %-12s %-10s %-10s\n", vol.to_string().c_str(),
                approx.to_string().c_str(), err.to_string().c_str(),
                err <= Rational(1, 2) ? "yes" : "NO");
  }
  std::printf("worst-case error of the trivial operator: %s\n",
              worst.to_string().c_str());

  // Any constant c has sup error >= 1/2 over volumes in [0, 1].
  std::printf("\nworst-case error of constant oracles:\n%-10s %-12s\n",
              "constant", "sup_err");
  for (int c = 0; c <= 10; c += 2) {
    Rational cv(c, 10);
    Rational sup = std::max(cv - Rational(0), Rational(1) - cv);
    std::printf("%-10s %-12s\n", cv.to_string().c_str(),
                sup.to_string().c_str());
  }
}

void BM_TrivialOperator(benchmark::State& state) {
  auto cells = slab(Rational(static_cast<std::int64_t>(state.range(0)), 10));
  for (auto _ : state) {
    auto v = trivial_half_approximation(cells, 2);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TrivialOperator)->Arg(0)->Arg(5)->Arg(10);

void BM_ExactForComparison(benchmark::State& state) {
  auto cells = slab(Rational(static_cast<std::int64_t>(state.range(0)), 10));
  for (auto _ : state) {
    auto v = semilinear_volume(cells);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExactForComparison)->Arg(5);

}  // namespace

CQA_BENCH_MAIN(print_table)
