// E9 -- the Theorem 1 / Theorem 2 proof gadgets, executed.
//
// (a) The AVG translation: finite sets map into (0, Delta) and
//     (1 - Delta, 1); the exact AVG is a monotone function of the
//     cardinality ratio, so an eps-approximate AVG oracle would decide a
//     (c1, c2)-separating sentence -- the reduction at the heart of the
//     inexpressibility of AVG_I^eps for eps < 1/2.
// (b) The good-instance volumes of Lemma 2: VOL(X) tracks card(B)/n, so
//     an eps-approximate VOL_I oracle would decide a (c1, c2)-good
//     sentence -- which AC0 circuits (Lemma 3) cannot.

#include "bench_util.h"
#include "cqa/approx/gadgets.h"
#include "cqa/core/aggregation_engine.h"
#include "cqa/core/constraint_database.h"

namespace {

using namespace cqa;

void print_table() {
  cqa_bench::header(
      "E9: AVG translation gadget + good-instance volumes",
      "AVG is a monotone function of the cardinality ratio; VOL(X) "
      "tracks card(B)/n within 1/n -- both reductions are live");
  AvgSeparationGadget g(Rational(1, 4));
  std::printf("Delta = 1/4\n%-10s %-10s %-14s\n", "n1", "n2",
              "AVG(U1' u U2')");
  for (auto [n1, n2] : std::vector<std::pair<int, int>>{
           {1, 32}, {1, 8}, {1, 2}, {1, 1}, {2, 1}, {8, 1}, {32, 1}}) {
    std::printf("%-10d %-10d %-14s\n", n1, n2,
                g.avg_for_cards(static_cast<std::size_t>(n1),
                                static_cast<std::size_t>(n2))
                    .to_string()
                    .c_str());
  }
  std::printf("\nminimum separable ratio c for eps (Delta = 1/4):\n");
  std::printf("%-8s %-14s\n", "eps", "min_ratio_c");
  for (double eps : {0.05, 0.1, 0.2, 0.3, 0.37, 0.45}) {
    double c = g.min_separable_ratio(eps);
    if (c > 0) {
      std::printf("%-8.2f %-14.3f\n", eps, c);
    } else {
      std::printf("%-8.2f %-14s\n", eps, "(none: eps too large)");
    }
  }

  // Good instances: exact volumes, tracking card(B)/n.
  std::printf("\nLemma-2 good instances (n = 16):\n");
  std::printf("%-20s %-8s %-10s %-10s %-12s\n", "B", "card(B)", "VOL(X)",
              "card/n", "|diff|<=1/n");
  struct Row {
    const char* label;
    std::uint64_t mask;
  } rows[] = {
      {"{0}", 0x1},
      {"alternating", 0x5555},
      {"low half", 0x00ff},
      {"dense", 0x7fff},
  };
  for (const Row& r : rows) {
    GoodInstance inst(16, r.mask);
    Rational vol = inst.vol_x();
    Rational frac(static_cast<std::int64_t>(inst.card_b()), 16);
    Rational diff = (vol - frac).abs();
    std::printf("%-20s %-8zu %-10s %-10s %-12s\n", r.label, inst.card_b(),
                vol.to_string().c_str(), frac.to_string().c_str(),
                diff <= Rational(1, 16) ? "yes" : "NO");
  }
  std::printf("\nLemma-2 thresholds: eps=0.1 -> c1=%.4f c2=%.4f\n",
              GoodInstance::c1(0.1), GoodInstance::c2(0.1));

  // The exact-AVG side: FO+POLY+SUM computes AVG exactly on finite
  // instances, which is what the eps < 1/2 impossibility is *about* --
  // approximation is impossible in FO+POLY, exact aggregation needs SUM.
  ConstraintDatabase db;
  CQA_CHECK(db.add_table("U", std::vector<std::vector<std::int64_t>>{
                                  {1}, {2}, {3}, {10}})
                .is_ok());
  AggregationEngine agg(&db);
  std::printf("\nexact AVG via FO+POLY+SUM on U = {1,2,3,10}: %s\n",
              agg.aggregate(AggregateFn::kAvg, "U(v)", "v")
                  .value_or_die()
                  .to_string()
                  .c_str());
}

void BM_GoodInstanceVolume(benchmark::State& state) {
  GoodInstance inst(static_cast<std::size_t>(state.range(0)),
                    0x5555555555555555ull);
  for (auto _ : state) {
    auto v = inst.vol_x();
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_GoodInstanceVolume)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_AvgGadget(benchmark::State& state) {
  AvgSeparationGadget g(Rational(1, 4));
  for (auto _ : state) {
    auto v = g.avg_for_cards(17, 5);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AvgGadget);

}  // namespace

CQA_BENCH_MAIN(print_table)
