// E4 -- Proposition 5: a fixed quantifier-free query phi(x, y) whose
// definable families F_phi(D_n) have VC dimension >= log |D_n|.
//
// The witness: Bit(a, y) over bit-membership databases. Exact shattering
// search confirms VCdim = k = ceil(log2 of the parameter count), growing
// with the database -- exactly why the KM construction cannot quantify
// uniformly over samples (the paper's Remarks after Corollary 2).

#include <cmath>

#include "bench_util.h"
#include "cqa/vc/sample_bounds.h"
#include "cqa/vc/shattering.h"

namespace {

using namespace cqa;

void print_table() {
  cqa_bench::header("E4: VC dimension growth with |D| (Prop 5)",
                    "VCdim(F_phi(D_k)) = k >= log2 |D_k| for every k");
  std::printf("%-4s %-8s %-10s %-8s %-12s %-10s\n", "k", "|adom|",
              "log2|D|", "VCdim", "VC>=log|D|?", "traces");
  for (std::size_t k = 2; k <= 8; ++k) {
    Prop5Instance inst = make_prop5_instance(k);
    auto traces = build_traces(inst.db, inst.phi, {inst.param_var},
                               {inst.element_var}, inst.param_pool,
                               inst.ground_set)
                      .value_or_die();
    int vc = traces.vc_dimension();
    double logd = std::log2(static_cast<double>(inst.db_size));
    std::printf("%-4zu %-8zu %-10.2f %-8d %-12s %-10zu\n", k, inst.db_size,
                logd, vc, vc + 1 >= logd ? "yes" : "NO",
                traces.num_traces());
  }

  // Contrast: a tame family (intervals) whose VC dimension does NOT grow.
  std::printf("\ninterval family a <= x <= b over growing pools:\n");
  std::printf("%-8s %-8s\n", "pool", "VCdim");
  Database db;
  FormulaPtr phi = Formula::f_and(
      Formula::le(Polynomial::variable(0), Polynomial::variable(2)),
      Formula::le(Polynomial::variable(2), Polynomial::variable(1)));
  for (int range : {4, 8, 16}) {
    std::vector<RVec> pool;
    for (int lo = 0; lo <= range; ++lo) {
      for (int hi = lo; hi <= range; ++hi) {
        pool.push_back({Rational(lo), Rational(hi)});
      }
    }
    std::vector<RVec> ground;
    for (int i = 1; i < range; ++i) ground.push_back({Rational(i)});
    if (ground.size() > 16) ground.resize(16);
    auto traces =
        build_traces(db, phi, {0, 1}, {2}, pool, ground).value_or_die();
    std::printf("%-8zu %-8d\n", pool.size(), traces.vc_dimension());
  }
}

void BM_ShatteringSearch(benchmark::State& state) {
  Prop5Instance inst =
      make_prop5_instance(static_cast<std::size_t>(state.range(0)));
  auto traces = build_traces(inst.db, inst.phi, {inst.param_var},
                             {inst.element_var}, inst.param_pool,
                             inst.ground_set)
                    .value_or_die();
  for (auto _ : state) {
    int vc = traces.vc_dimension();
    benchmark::DoNotOptimize(vc);
  }
}
BENCHMARK(BM_ShatteringSearch)->Arg(4)->Arg(6)->Arg(8);

void BM_TraceConstruction(benchmark::State& state) {
  Prop5Instance inst =
      make_prop5_instance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto traces = build_traces(inst.db, inst.phi, {inst.param_var},
                               {inst.element_var}, inst.param_pool,
                               inst.ground_set);
    benchmark::DoNotOptimize(traces);
  }
}
BENCHMARK(BM_TraceConstruction)->Arg(4)->Arg(6);

}  // namespace

CQA_BENCH_MAIN(print_table)
