// A5 -- guard metering overhead: resource governance must be close to
// free when quotas never trip. The same exact-volume and elimination
// workloads run unmetered (meter = nullptr, no thread-local scope) and
// metered (WorkMeter at the default quotas + MeterScope, so the BigInt
// hot path charges too); the headline table reports the paired min-of-k
// overhead and writes BENCH_guard.json with an overhead_ok verdict
// against the 2% budget from DESIGN.md section 8.
//
// Min-of-k timing deliberately: the *minimum* is the principled
// estimator for deterministic CPU-bound work (everything above the min
// is scheduler noise), and overhead below noise would otherwise swamp a
// 2% signal.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cqa/approx/random.h"
#include "cqa/constraint/fourier_motzkin.h"
#include "cqa/guard/fault.h"
#include "cqa/guard/meter.h"
#include "cqa/volume/semilinear_volume.h"

namespace {

using namespace cqa;

constexpr int kReps = 7;          // min-of-k repetitions per variant
constexpr double kBudgetPct = 2.0;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Random axis-aligned boxes in [0, 5]^dim with rational corners (the E2
// workload shape: overlapping boxes defeat the disjoint-sum fast path
// often enough that the sweep and its section metering run for real).
std::vector<LinearCell> random_boxes(std::size_t dim, std::size_t count,
                                     std::uint64_t seed) {
  Xoshiro rng(seed);
  std::vector<LinearCell> cells;
  for (std::size_t c = 0; c < count; ++c) {
    LinearCell cell(dim);
    for (std::size_t v = 0; v < dim; ++v) {
      std::int64_t a = static_cast<std::int64_t>(rng.next() % 12);
      std::int64_t w = 1 + static_cast<std::int64_t>(rng.next() % 8);
      LinearConstraint lo;
      lo.coeffs.assign(dim, Rational());
      lo.coeffs[v] = Rational(-1);
      lo.rhs = Rational(-a, 4);
      lo.cmp = LinCmp::kLe;
      LinearConstraint hi;
      hi.coeffs.assign(dim, Rational());
      hi.coeffs[v] = Rational(a + w, 4);
      hi.cmp = LinCmp::kLe;
      cell.add(std::move(lo));
      cell.add(std::move(hi));
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

// Dense elimination input: n lower and n upper bounds on x0 mixing the
// other variables, so fm_eliminate's pair loop produces n^2 rows.
std::vector<LinearConstraint> fm_rows(std::size_t n) {
  std::vector<LinearConstraint> rows;
  for (std::size_t i = 0; i < n; ++i) {
    LinearConstraint lo;
    lo.coeffs = {Rational(-1), Rational(static_cast<std::int64_t>(i % 3)),
                 Rational(1, static_cast<std::int64_t>(i + 1))};
    lo.rhs = Rational(-static_cast<std::int64_t>(i), 7);
    lo.cmp = LinCmp::kLe;
    rows.push_back(std::move(lo));
    LinearConstraint hi;
    hi.coeffs = {Rational(1), Rational(1, static_cast<std::int64_t>(i + 2)),
                 Rational(static_cast<std::int64_t>(i % 5))};
    hi.rhs = Rational(static_cast<std::int64_t>(100 + i), 3);
    hi.cmp = LinCmp::kLe;
    rows.push_back(std::move(hi));
  }
  return rows;
}

struct Workload {
  std::string name;
  // Runs the workload once; meter == nullptr is the unmetered variant.
  // MeterScope installation (for the BigInt hot path) happens in the
  // harness, not here.
  void (*run)(guard::WorkMeter* meter);
};

// Each workload runs long enough (tens of ms) that a 2% delta clears
// timer noise; a single sweep of this size is only ~0.1 ms.
void run_sweep_2d(guard::WorkMeter* meter) {
  auto cells = random_boxes(2, 8, 42);
  for (int rep = 0; rep < 200; ++rep) {
    auto v = semilinear_volume_sweep(cells, nullptr, nullptr, meter);
    CQA_CHECK(v.is_ok());
  }
}

void run_sweep_3d(guard::WorkMeter* meter) {
  auto cells = random_boxes(3, 4, 43);
  for (int rep = 0; rep < 200; ++rep) {
    auto v = semilinear_volume_sweep(cells, nullptr, nullptr, meter);
    CQA_CHECK(v.is_ok());
  }
}

void run_fm(guard::WorkMeter* meter) {
  auto rows = fm_rows(40);
  for (int rep = 0; rep < 2; ++rep) {
    auto out = fm_eliminate(rows, 0, meter);
    CQA_CHECK(!out.empty() || rows.empty());
  }
}

struct Paired {
  double off = 1e100;
  double on = 1e100;
};

// Interleaves the two variants rep by rep so slow machine-load drift
// hits both equally, then takes each variant's minimum.
Paired min_of_k(const Workload& w) {
  Paired best;
  for (int rep = 0; rep < kReps; ++rep) {
    {
      const double t0 = now_seconds();
      w.run(nullptr);
      best.off = std::min(best.off, now_seconds() - t0);
    }
    {
      guard::WorkMeter meter{guard::ResourceQuota{}};  // Session defaults
      const double t0 = now_seconds();
      guard::MeterScope scope(&meter);
      w.run(&meter);
      const double dt = now_seconds() - t0;
      CQA_CHECK(!meter.tripped());  // defaults must not trip here
      best.on = std::min(best.on, dt);
    }
  }
  return best;
}

void print_table() {
  cqa_bench::header(
      "A5: guard metering overhead (unmetered vs default quotas)",
      "threading WorkMeter through QE, FM, the exact sweep, and the "
      "BigInt hot path costs under 2% when quotas never trip");

  const std::vector<Workload> workloads = {
      {"exact_sweep_2d", run_sweep_2d},
      {"exact_sweep_3d", run_sweep_3d},
      {"fm_elimination", run_fm},
  };

  std::printf("min-of-%d seconds per variant\n\n", kReps);
  std::printf("%-16s %-12s %-12s %-10s\n", "workload", "off_sec", "on_sec",
              "overhead%");

  double max_overhead = 0.0;
  std::string json = "{\n  \"reps\": " + std::to_string(kReps) +
                     ",\n  \"budget_pct\": " + std::to_string(kBudgetPct) +
                     ",\n  \"workloads\": {\n";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    const Paired t = min_of_k(w);
    const double off = t.off;
    const double on = t.on;
    const double pct = off > 0 ? (on - off) / off * 100.0 : 0.0;
    max_overhead = std::max(max_overhead, pct);
    std::printf("%-16s %-12.5f %-12.5f %-+10.2f\n", w.name.c_str(), off, on,
                pct);
    json += "    \"" + w.name + "\": {\"off_sec\": " + std::to_string(off) +
            ", \"on_sec\": " + std::to_string(on) +
            ", \"overhead_pct\": " + std::to_string(pct) + "}";
    json += (i + 1 < workloads.size()) ? ",\n" : "\n";
  }
  const bool ok = max_overhead < kBudgetPct;
  json += "  },\n  \"max_overhead_pct\": " + std::to_string(max_overhead) +
          ",\n  \"overhead_ok\": " + (ok ? std::string("true")
                                         : std::string("false")) +
          "\n}\n";

  std::printf("\nmax overhead: %.2f%% (budget %.1f%%) -> %s\n", max_overhead,
              kBudgetPct, ok ? "ok" : "OVER BUDGET");

  std::FILE* f = std::fopen("BENCH_guard.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_guard.json\n");
  }
}

// Micro costs of the primitives themselves, under google-benchmark
// timing: one charge call, one never-tripped check, and the
// fault-hook fast path with no injector installed.
void BM_MeterCharge(benchmark::State& state) {
  guard::WorkMeter meter{guard::ResourceQuota{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(meter.charge_qe_atoms(1));
  }
}
BENCHMARK(BM_MeterCharge);

void BM_MeterCheckUntripped(benchmark::State& state) {
  guard::WorkMeter meter{guard::ResourceQuota{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(meter.check().is_ok());
  }
}
BENCHMARK(BM_MeterCheckUntripped);

void BM_FaultHookOff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        guard::fault_fires(guard::FaultSite::kBigIntAlloc));
  }
}
BENCHMARK(BM_FaultHookOff);

void BM_BigIntChargeThreadLocalOff(benchmark::State& state) {
  // No MeterScope installed: the unmetered thread-local fast path.
  for (auto _ : state) {
    guard::charge_bigint_bits_tl(64);
  }
}
BENCHMARK(BM_BigIntChargeThreadLocalOff);

}  // namespace

CQA_BENCH_MAIN(print_table)
