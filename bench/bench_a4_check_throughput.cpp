// A4 -- checking throughput: how many differential/metamorphic oracle
// trials per second cqa_check sustains per oracle, so harness
// regressions (an oracle suddenly 10x slower, a shrink loop that stops
// terminating) show up in CI like any perf regression.
//
// The headline table runs every registered oracle for a fixed trial
// count at the cqa_check defaults and writes BENCH_check.json (one
// entry per oracle: trials/sec, pass/fail/skip split). Every oracle
// must appear, no oracle may be violated, and the harness overhead
// micro-bench (generate + print, no engine work) runs under
// google-benchmark timing.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cqa/check/runner.h"

namespace {

using namespace cqa;

constexpr std::size_t kTrials = 100;
constexpr std::uint64_t kSeed = 42;

struct OracleRow {
  std::string name;
  double seconds = 0.0;
  OracleStats stats;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<OracleRow> run_all() {
  std::vector<OracleRow> rows;
  for (const Oracle* oracle : all_oracles()) {
    CheckOptions options;
    options.trials = kTrials;
    options.seed = kSeed;
    options.oracle_names = {oracle->name()};
    OracleRow row;
    row.name = oracle->name();
    const double t0 = now_seconds();
    const CheckReport report = run_checks(options);
    row.seconds = now_seconds() - t0;
    if (!report.oracles.empty()) row.stats = report.oracles[0];
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_table() {
  cqa_bench::header(
      "A4: checking throughput -- oracle trials per second",
      "every oracle sustains its baseline trial rate at the cqa_check "
      "defaults and no oracle is violated on the seed corpus");

  std::printf("trials per oracle: %zu, seed %llu\n\n", kTrials,
              static_cast<unsigned long long>(kSeed));
  std::printf("%-26s %-12s %-10s %-6s %-6s %-6s\n", "oracle",
              "trials/sec", "seconds", "pass", "fail", "skip");

  const std::vector<OracleRow> rows = run_all();
  bool any_violated = false;
  std::string json = "{\n  \"trials\": " + std::to_string(kTrials) +
                     ",\n  \"seed\": " + std::to_string(kSeed) +
                     ",\n  \"oracles\": {\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const OracleRow& r = rows[i];
    const double rate =
        r.seconds > 0 ? static_cast<double>(r.stats.trials) / r.seconds
                      : 0.0;
    std::printf("%-26s %-12.1f %-10.4f %-6zu %-6zu %-6zu%s\n",
                r.name.c_str(), rate, r.seconds, r.stats.passed,
                r.stats.failed, r.stats.skipped,
                r.stats.violated ? "  VIOLATED" : "");
    any_violated = any_violated || r.stats.violated;
    json += "    \"" + r.name + "\": {\"trials_per_sec\": " +
            std::to_string(rate) + ", \"seconds\": " +
            std::to_string(r.seconds) + ", \"pass\": " +
            std::to_string(r.stats.passed) + ", \"fail\": " +
            std::to_string(r.stats.failed) + ", \"skip\": " +
            std::to_string(r.stats.skipped) + ", \"violated\": " +
            (r.stats.violated ? "true" : "false") + "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  },\n  \"any_violated\": ";
  json += any_violated ? "true" : "false";
  json += "\n}\n";

  std::printf("\nany oracle violated: %s\n", any_violated ? "YES" : "no");

  std::FILE* f = std::fopen("BENCH_check.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_check.json\n");
  }
}

// Harness-only overhead: generation + printing, no engine work. If
// this regresses, trial rates of every oracle sink together.
void BM_GenerateAndPrint(benchmark::State& state) {
  GenOptions options;
  options.quantifiers = static_cast<std::size_t>(state.range(0));
  FormulaGen gen(options);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const GeneratedFormula g = gen.generate(seed++);
    benchmark::DoNotOptimize(g.text());
  }
}
BENCHMARK(BM_GenerateAndPrint)->Arg(0)->Arg(2);

// Shrinker cost on a formula that minimizes all the way down.
void BM_ShrinkToConstant(benchmark::State& state) {
  FormulaGen gen(GenOptions{});
  const GeneratedFormula g = gen.generate(17);
  const StillFails always = [](const GeneratedFormula&) { return true; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(shrink(g, always));
  }
}
BENCHMARK(BM_ShrinkToConstant);

}  // namespace

CQA_BENCH_MAIN(print_table)
