// E7 -- the Section-4 Remark: for convex query outputs, Lowner-John
// ellipsoids give a relative (c1, c2)-approximation with
// c1 = (k^k + 1)/(2 k^k) - eps, c2 = (k^k + 1)/2 + eps.
//
// We verify the sandwich vol(E)/k^k <= vol(P) <= vol(E) on random and
// structured polytopes, and report the realized mid-point estimator
// ratio against the paper's constants.

#include <cmath>

#include "bench_util.h"
#include "cqa/approx/ellipsoid.h"
#include "cqa/approx/random.h"
#include "cqa/geometry/affine.h"
#include "cqa/geometry/polytope_volume.h"
#include "cqa/geometry/vertex_enum.h"

namespace {

using namespace cqa;

Polyhedron random_polytope(std::size_t dim, std::size_t points,
                           std::uint64_t seed) {
  Xoshiro rng(seed);
  for (int attempt = 0; attempt < 50; ++attempt) {
    std::vector<RVec> pts;
    for (std::size_t i = 0; i < points; ++i) {
      RVec p(dim);
      for (auto& c : p) {
        c = Rational(static_cast<std::int64_t>(rng.next() % 17) - 8, 2);
      }
      pts.push_back(std::move(p));
    }
    auto hull = Polyhedron::hull_of(pts);
    if (hull.is_ok()) return std::move(hull).take();
  }
  CQA_CHECK(false);
  return Polyhedron(dim);
}

void print_table() {
  cqa_bench::header(
      "E7: Lowner-John volume sandwich for convex bodies",
      "vol(E)/k^k <= vol(P) <= vol(E); mid estimate has relative error "
      "within the paper's (c1, c2) window");
  std::printf("%-14s %-3s %-12s %-12s %-12s %-9s %-9s\n", "body", "k",
              "exact", "lower", "upper", "ratio_up", "k^k");
  struct Body {
    const char* name;
    Polyhedron poly;
  };
  std::vector<Body> bodies;
  bodies.push_back({"square", Polyhedron::box(2, Rational(0), Rational(2))});
  bodies.push_back({"simplex2", Polyhedron::simplex(2, Rational(3))});
  bodies.push_back({"cube", Polyhedron::box(3, Rational(-1), Rational(1))});
  bodies.push_back({"simplex3", Polyhedron::simplex(3, Rational(2))});
  bodies.push_back({"random2a", random_polytope(2, 7, 11)});
  bodies.push_back({"random2b", random_polytope(2, 10, 22)});
  bodies.push_back({"random3", random_polytope(3, 9, 33)});
  for (auto& b : bodies) {
    const double exact = polytope_volume(b.poly).value_or_die().to_double();
    auto bounds = john_volume_bounds(b.poly).value_or_die();
    const double k = static_cast<double>(b.poly.dim());
    std::printf("%-14s %-3.0f %-12.4f %-12.4f %-12.4f %-9.3f %-9.0f\n",
                b.name, k, exact, bounds.lower, bounds.upper,
                bounds.upper / exact, std::pow(k, k));
    CQA_CHECK(bounds.lower <= exact * 1.01);
    CQA_CHECK(bounds.upper * 1.01 >= exact);
  }
  std::printf("\npaper's relative-approximation constants:\n");
  std::printf("%-3s %-12s %-12s\n", "k", "c1", "c2");
  for (int k = 2; k <= 4; ++k) {
    const double kk = std::pow(k, k);
    std::printf("%-3d %-12.5f %-12.5f\n", k, (kk + 1) / (2 * kk),
                (kk + 1) / 2);
  }
}

void BM_Mvee(benchmark::State& state) {
  Polyhedron p = random_polytope(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(1)),
                                 7);
  auto vertices = enumerate_vertices(p);
  for (auto _ : state) {
    auto e = min_volume_enclosing_ellipsoid(vertices);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_Mvee)->Args({2, 8})->Args({3, 10});

void BM_JohnBoundsVsExact(benchmark::State& state) {
  Polyhedron p = random_polytope(3, 9, 13);
  if (state.range(0) == 0) {
    for (auto _ : state) {
      auto b = john_volume_bounds(p);
      benchmark::DoNotOptimize(b);
    }
    state.SetLabel("john");
  } else {
    for (auto _ : state) {
      auto v = polytope_volume(p);
      benchmark::DoNotOptimize(v);
    }
    state.SetLabel("exact");
  }
}
BENCHMARK(BM_JohnBoundsVsExact)->Arg(0)->Arg(1);

}  // namespace

CQA_BENCH_MAIN(print_table)
