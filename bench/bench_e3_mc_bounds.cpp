// E3 -- Theorem 4 + Proposition 6: Monte-Carlo volume with the Blumer
// sample bound M > max((4/eps)log(2/delta), (8d/eps)log(13/eps)).
//
// For each (eps, delta) we draw ONE sample and measure the *sup over a
// parameter grid* of the estimation error -- the uniformity that makes
// this an FO+POLY+SUM+W operator rather than a per-instance trick.

#include <cmath>

#include "bench_util.h"
#include "cqa/approx/monte_carlo.h"
#include "cqa/core/constraint_database.h"
#include "cqa/vc/sample_bounds.h"

namespace {

using namespace cqa;

struct Family {
  const char* name;
  const char* formula;
  // exact VOL_I as a function of the parameter a in [0,1]
  double (*exact)(double);
};

double disk_vol(double a) { return M_PI * a / 4.0; }  // x^2+y^2 <= a
double slab_vol(double a) { return a; }                // y <= a band
// under y <= a x^2 on [0,1]^2: integral of a x^2 = a/3 (for a <= 1)
double parab_clipped(double a) { return a / 3.0; }

void print_table() {
  cqa_bench::header(
      "E3: eps-delta Monte-Carlo volume, uniform over parameters",
      "sup-over-parameter-grid error must stay below eps (w.p. 1-delta); "
      "sample size follows the Blumer bound");
  ConstraintDatabase db;
  Family fams[] = {
      {"disk(a)", "x^2 + y^2 <= a", disk_vol},
      {"band(a)", "0 <= x & x <= 1 & 0 <= y & y <= a", slab_vol},
      {"parabola(a)", "y <= a * x^2", parab_clipped},
  };
  std::printf("%-13s %-7s %-7s %-4s %-8s %-11s %-9s\n", "family", "eps",
              "delta", "d", "M", "sup_err", "ok");
  for (const Family& fam : fams) {
    auto phi = db.parse(fam.formula).value_or_die();
    const std::size_t x = db.var("x"), y = db.var("y"), a = db.var("a");
    for (double eps : {0.1, 0.05, 0.02}) {
      for (double delta : {0.1, 0.01}) {
        const double d = 3.0;
        const std::size_t m = blumer_sample_bound(eps, delta, d);
        McVolumeEstimator est(&db.db(), phi, {x, y}, m, 31337);
        double sup_err = 0;
        for (int i = 0; i <= 20; ++i) {
          Rational av(i, 20);
          double got = est.estimate({{a, av}}).value_or_die();
          double exact = fam.exact(av.to_double());
          sup_err = std::fmax(sup_err, std::fabs(got - exact));
        }
        std::printf("%-13s %-7.2f %-7.2f %-4.0f %-8zu %-11.5f %-9s\n",
                    fam.name, eps, delta, d, m, sup_err,
                    sup_err < eps ? "yes" : "NO");
      }
    }
  }

  // Goldberg-Jerrum constants for representative queries (Prop 6 text).
  std::printf("\nGoldberg-Jerrum constants C (VCdim < C log2|D|):\n");
  std::printf("%-26s %-4s %-4s %-4s %-4s %-6s %-10s\n", "query shape", "k",
              "p", "q", "deg", "atoms", "C");
  struct QShape {
    const char* name;
    std::size_t k, p, q, deg, atoms;
  } shapes[] = {
      {"section-3 example", 2, 1, 0, 1, 6},
      {"quantified join", 2, 2, 2, 1, 10},
      {"quadratic selection", 3, 2, 1, 2, 8},
  };
  for (const auto& s : shapes) {
    double c = goldberg_jerrum_constant(s.k, s.p, s.q, s.deg, s.atoms);
    std::printf("%-26s %-4zu %-4zu %-4zu %-4zu %-6zu %-10.1f\n", s.name,
                s.k, s.p, s.q, s.deg, s.atoms, c);
  }
}

void BM_EstimateAcrossSampleSizes(benchmark::State& state) {
  ConstraintDatabase db;
  auto phi = db.parse("x^2 + y^2 <= a").value_or_die();
  const std::size_t x = db.var("x"), y = db.var("y"), a = db.var("a");
  McVolumeEstimator est(&db.db(), phi, {x, y},
                        static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto v = est.estimate({{a, Rational(1, 2)}});
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_EstimateAcrossSampleSizes)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_SampleDraw(benchmark::State& state) {
  ConstraintDatabase db;
  auto phi = db.parse("x^2 + y^2 <= 1").value_or_die();
  const std::size_t x = db.var("x"), y = db.var("y");
  for (auto _ : state) {
    McVolumeEstimator est(&db.db(), phi, {x, y},
                          static_cast<std::size_t>(state.range(0)), 5);
    benchmark::DoNotOptimize(est.sample_size());
  }
}
BENCHMARK(BM_SampleDraw)->Arg(10000);

}  // namespace

CQA_BENCH_MAIN(print_table)
