// A8 -- exact-arithmetic fast path: the two-tier BigInt (inline 64-bit
// values, heap limbs only past overflow, Karatsuba above the limb
// threshold) plus the pooled Rational compound ops must pay off on the
// workloads that dominate the exact pipeline: Fourier-Motzkin pivoting
// over small coefficients, the semilinear sweep's section evaluation,
// and Lagrange interpolation. Each workload runs min-of-k and is
// compared against the pre-refactor baseline (sign-magnitude heap limbs
// for every value, copy-assign compound ops) measured at the commit
// right before the two-tier rewrite on the same reference machine; the
// committed BENCH_arith.json records the speedups with a >= 3x floor on
// the small-value-dominated cases.
//
// Min-of-k for the same reason as A5: deterministic CPU-bound work, so
// the minimum is the estimator and everything above it is scheduler
// noise.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cqa/approx/random.h"
#include "cqa/arith/rational.h"
#include "cqa/constraint/fourier_motzkin.h"
#include "cqa/poly/interpolation.h"
#include "cqa/volume/semilinear_volume.h"

namespace {

using namespace cqa;

constexpr int kReps = 7;  // min-of-k repetitions per workload
constexpr double kSpeedupFloor = 3.0;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Workloads. All inputs are deterministic; every value in the "small"
// workloads stays well inside 64 bits so the inline representation (and
// before it, the 1-2 limb heap representation) is the only path taken.

// Dense elimination input with small rational coefficients: n lower and
// n upper bounds on x0 mixing the other variables, so fm_eliminate's
// pair loop produces n^2 combination rows of small-value Rational
// arithmetic -- the FM pivot shape from BENCH_guard.json.
std::vector<LinearConstraint> fm_rows_small(std::size_t n) {
  std::vector<LinearConstraint> rows;
  for (std::size_t i = 0; i < n; ++i) {
    LinearConstraint lo;
    lo.coeffs = {Rational(-1), Rational(static_cast<std::int64_t>(i % 3)),
                 Rational(1, static_cast<std::int64_t>(i + 1))};
    lo.rhs = Rational(-static_cast<std::int64_t>(i), 7);
    lo.cmp = LinCmp::kLe;
    rows.push_back(std::move(lo));
    LinearConstraint hi;
    hi.coeffs = {Rational(1), Rational(1, static_cast<std::int64_t>(i + 2)),
                 Rational(static_cast<std::int64_t>(i % 5))};
    hi.rhs = Rational(static_cast<std::int64_t>(100 + i), 3);
    hi.cmp = LinCmp::kLe;
    rows.push_back(std::move(hi));
  }
  return rows;
}

void run_fm_pivot_small() {
  auto rows = fm_rows_small(40);
  for (int rep = 0; rep < 2; ++rep) {
    auto out = fm_eliminate(rows, 0, nullptr);
    CQA_CHECK(!out.empty());
  }
}

// Full elimination chains: feasibility of a 4-variable system runs four
// eliminations back to back, the shape fm_sample_point / projection use.
void run_fm_feasible_chain() {
  std::vector<LinearConstraint> rows;
  const std::size_t dim = 4;
  for (std::size_t i = 0; i < 12; ++i) {
    LinearConstraint c;
    c.coeffs.assign(dim, Rational());
    for (std::size_t v = 0; v < dim; ++v) {
      c.coeffs[v] = Rational(static_cast<std::int64_t>((i * 7 + v * 3) % 11) - 5,
                             static_cast<std::int64_t>(1 + (i + v) % 4));
    }
    c.rhs = Rational(static_cast<std::int64_t>(30 + i), 2);
    c.cmp = (i % 3 == 0) ? LinCmp::kLt : LinCmp::kLe;
    rows.push_back(std::move(c));
  }
  for (int rep = 0; rep < 6; ++rep) {
    CQA_CHECK(fm_feasible(rows, dim));
  }
}

// The A5 sweep workload: overlapping random boxes with quarter-integer
// corners defeat the disjoint-sum fast path, so the exact sweep and its
// small-value section arithmetic run for real.
std::vector<LinearCell> random_boxes(std::size_t dim, std::size_t count,
                                     std::uint64_t seed) {
  Xoshiro rng(seed);
  std::vector<LinearCell> cells;
  for (std::size_t c = 0; c < count; ++c) {
    LinearCell cell(dim);
    for (std::size_t v = 0; v < dim; ++v) {
      std::int64_t a = static_cast<std::int64_t>(rng.next() % 12);
      std::int64_t w = 1 + static_cast<std::int64_t>(rng.next() % 8);
      LinearConstraint lo;
      lo.coeffs.assign(dim, Rational());
      lo.coeffs[v] = Rational(-1);
      lo.rhs = Rational(-a, 4);
      lo.cmp = LinCmp::kLe;
      LinearConstraint hi;
      hi.coeffs.assign(dim, Rational());
      hi.coeffs[v] = Rational(1);
      hi.rhs = Rational(a + w, 4);
      hi.cmp = LinCmp::kLe;
      cell.add(std::move(lo));
      cell.add(std::move(hi));
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

void run_sweep_sections() {
  auto cells = random_boxes(2, 8, 42);
  for (int rep = 0; rep < 100; ++rep) {
    auto v = semilinear_volume_sweep(cells, nullptr, nullptr, nullptr);
    CQA_CHECK(v.is_ok());
  }
}

// Lagrange/Newton interpolation through rational nodes: coefficient
// growth pushes intermediates past 64 bits, so this exercises the
// mixed small/heap boundary and (post-refactor) Karatsuba on the
// larger products.
void run_lagrange_interp() {
  std::vector<std::pair<Rational, Rational>> pts;
  for (std::int64_t i = 0; i < 20; ++i) {
    Rational x(3 * i + 1, 7);
    Rational y((i * i * i) % 97 - 40, 1 + i % 5);
    pts.emplace_back(x, y);
  }
  for (int rep = 0; rep < 6; ++rep) {
    UPoly p = interpolate(pts);
    CQA_CHECK(p.degree() >= 1);
    for (const auto& [x, y] : pts) CQA_CHECK(p.eval(x) == y);
  }
}

// The raw pivot inner loop in isolation: axpy-style compound updates
// c_i -= f * e_i over small rationals, the exact statement FM executes
// per coefficient. Post-refactor this must run with zero heap traffic.
void run_rational_axpy() {
  std::vector<Rational> row(64), eq(64);
  for (std::size_t i = 0; i < row.size(); ++i) {
    row[i] = Rational(static_cast<std::int64_t>(i) - 31,
                      static_cast<std::int64_t>(1 + i % 7));
    eq[i] = Rational(static_cast<std::int64_t>((i * 5) % 13) - 6,
                     static_cast<std::int64_t>(1 + i % 3));
  }
  const Rational f(3, 5);
  Rational acc;
  for (int rep = 0; rep < 4000; ++rep) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      Rational c = row[i];
      c -= f * eq[i];
      acc += c;
      acc -= c;  // keep acc small; the churn is the workload
    }
  }
  CQA_CHECK(acc.is_zero());
}

// Balanced huge multiplication: two ~8192-bit operands, the size the
// interpolation-heavy sweep reaches on deep section stacks. Schoolbook
// is quadratic here; Karatsuba (post-refactor) is the win being
// measured, so the floor for this row is lower than the small-value 3x.
void run_bigint_mul_large() {
  Xoshiro rng(7);
  auto rand_big = [&](int limbs) {
    BigInt x;
    for (int i = 0; i < limbs; ++i) {
      x = x.shl(32) + BigInt(static_cast<std::int64_t>(rng.next() & 0xffffffffu));
    }
    return x;
  };
  BigInt a = rand_big(256);
  BigInt b = rand_big(256);
  BigInt acc;
  for (int rep = 0; rep < 60; ++rep) {
    acc = acc + a * b;
  }
  CQA_CHECK(!acc.is_zero());
}

struct Workload {
  std::string name;
  void (*run)();
  // min-of-k seconds at the pre-refactor commit (heap limbs for every
  // value, copy-assign compound ops), measured on the reference machine
  // that produced the committed BENCH_arith.json. 0 = no baseline row.
  double baseline_sec;
  // Small-value-dominated rows carry the 3x floor; the Karatsuba row
  // only needs to beat schoolbook.
  double floor;
};

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);

  cqa_bench::header(
      "A8: exact arithmetic fast path (two-tier BigInt + pooled Rational)",
      "inline small values, arena-recycled heap limbs, in-place compound "
      "ops and Karatsuba must give >= 3x on small-value-dominated FM "
      "pivoting and sweep workloads vs the pre-refactor baseline");

  const std::vector<Workload> workloads = {
      {"fm_pivot_small", run_fm_pivot_small, 0.09582, kSpeedupFloor},
      {"fm_feasible_chain", run_fm_feasible_chain, 1.26428, kSpeedupFloor},
      {"sweep_sections", run_sweep_sections, 0.26725, kSpeedupFloor},
      {"rational_axpy", run_rational_axpy, 0.31522, kSpeedupFloor},
      {"lagrange_interp", run_lagrange_interp, 0.05332, 1.5},
      {"bigint_mul_large", run_bigint_mul_large, 0.00320, 1.5},
  };

  std::printf("min-of-%d seconds per workload\n\n", kReps);
  std::printf("%-20s %-12s %-14s %-10s %-8s\n", "workload", "sec",
              "baseline_sec", "speedup", "floor");

  bool all_ok = true;
  std::string json = "{\n  \"reps\": " + std::to_string(kReps) +
                     ",\n  \"speedup_floor_small\": " +
                     std::to_string(kSpeedupFloor) + ",\n  \"workloads\": {\n";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    double best = 1e100;
    for (int rep = 0; rep < kReps; ++rep) {
      const double t0 = now_seconds();
      w.run();
      best = std::min(best, now_seconds() - t0);
    }
    const double speedup = w.baseline_sec > 0 ? w.baseline_sec / best : 0.0;
    const bool row_ok = w.baseline_sec <= 0 || speedup >= w.floor;
    all_ok = all_ok && row_ok;
    std::printf("%-20s %-12.5f %-14.5f %-10.2f %-8.1f\n", w.name.c_str(), best,
                w.baseline_sec, speedup, w.floor);
    json += "    \"" + w.name + "\": {\"sec\": " + std::to_string(best) +
            ", \"baseline_sec\": " + std::to_string(w.baseline_sec) +
            ", \"speedup\": " + std::to_string(speedup) +
            ", \"floor\": " + std::to_string(w.floor) + "}";
    json += (i + 1 < workloads.size()) ? ",\n" : "\n";
  }
  json += "  },\n  \"speedup_ok\": " +
          (all_ok ? std::string("true") : std::string("false")) + "\n}\n";

  std::printf("\nspeedup floors %s\n", all_ok ? "met" : "NOT MET");

  std::FILE* f = std::fopen("BENCH_arith.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_arith.json\n");
  }

  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
